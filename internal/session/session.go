// Package session implements temporal redundancy: merging several
// independent inventory sessions of the same population, in the spirit of
// Jacobsen et al., "Reliable Identification of RFID Tags Using Multiple
// Independent Reader Sessions" (arXiv:0904.2441). Where the paper's R_C
// model buys reliability spatially (more tags, more antennas), a session
// merge buys it in time: each extra session gives every tag another
// independent identification opportunity, and a stopping rule driven by
// the remaining-population estimate ends the merge as soon as the target
// confidence is reached — typically after far fewer sessions than a
// fixed worst-case session count.
//
// Two merge policies are supported:
//
//   - union (Confirm <= 1): a tag is confirmed once any session
//     identifies it — maximum recall, no protection against phantom
//     reads.
//   - k-of-n confirmation (Confirm = k, Window = n): a tag is confirmed
//     only when at least k of the last n sessions identified it —
//     trading latency for robustness against spurious identifications.
//
// The stopping rule follows the estimate-based criterion: after session
// S, the cardinality estimator (estimate.FromRound over each round's
// slot statistics, corrected for tags already identified and therefore
// quiet) yields a population estimate N̂. The pooled per-session
// identification probability is p̂ = (total identifications)/(S·N̂), so a
// tag's chance of still being unconfirmed is P(Bin(S, p̂) < k), the
// expected number of unconfirmed tags is λ = N̂·P(Bin(S, p̂) < k), and —
// treating misses as approximately Poisson — the probability that no tag
// is missing is e^(−λ). The merge stops when that clears the configured
// confidence.
package session

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/estimate"
	"rfidtrack/internal/gen2"
)

// Config parameterizes a session merge.
type Config struct {
	// Confirm is k: the number of sessions that must identify a tag
	// before it counts as confirmed. <= 1 is the union policy.
	Confirm int
	// Window is n of k-of-n: only the last n sessions count toward
	// confirmation. 0 means every session so far (cumulative k-of-S).
	Window int
	// Confidence is the stopping target: the estimated probability that
	// no tag remains unconfirmed. 0 selects DefaultConfidence.
	Confidence float64
	// MinSessions is the floor before the stopping rule may fire.
	// 0 selects max(2, Confirm): after a single session the pooled
	// identification probability p̂ degenerates to 1 whenever the estimate
	// is at its Seen floor, so a one-session merge can never justify
	// stopping on its own evidence.
	MinSessions int
	// MaxSessions is the hard cap; the merge reports Exhausted (and
	// Stop) when it is reached regardless of confidence. 0 selects
	// DefaultMaxSessions.
	MaxSessions int
}

// Defaults for Config zero values.
const (
	DefaultConfidence  = 0.99
	DefaultMaxSessions = 64
)

func (c Config) withDefaults() Config {
	if c.Confirm < 1 {
		c.Confirm = 1
	}
	if c.Confidence == 0 {
		c.Confidence = DefaultConfidence
	}
	if c.MinSessions <= 0 {
		c.MinSessions = max(2, c.Confirm)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Confirm < 0 {
		return fmt.Errorf("session: negative confirm count %d", c.Confirm)
	}
	if c.Window < 0 {
		return fmt.Errorf("session: negative window %d", c.Window)
	}
	if c.Window > 0 && c.Window < c.Confirm {
		return fmt.Errorf("session: window %d smaller than confirm count %d", c.Window, c.Confirm)
	}
	if c.Confidence < 0 || c.Confidence >= 1 {
		return fmt.Errorf("session: confidence %v outside [0, 1)", c.Confidence)
	}
	d := c.withDefaults()
	if d.MaxSessions < d.MinSessions {
		return fmt.Errorf("session: max sessions %d below min sessions %d", d.MaxSessions, d.MinSessions)
	}
	return nil
}

// ParseConfirm parses a CLI confirmation policy: "union" (or "1") for
// the union merge, or "K-of-N" (e.g. "2-of-3") for k-of-n confirmation.
// N may be 0 ("2-of-0") for cumulative confirmation over all sessions.
func ParseConfirm(s string) (k, n int, err error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "union", "1", "":
		return 1, 0, nil
	}
	if _, err := fmt.Sscanf(strings.ToLower(s), "%d-of-%d", &k, &n); err != nil {
		return 0, 0, fmt.Errorf("session: confirm policy %q is not \"union\" or \"K-of-N\"", s)
	}
	if k < 1 || n < 0 || (n > 0 && n < k) {
		return 0, 0, fmt.Errorf("session: confirm policy %q has k=%d, n=%d", s, k, n)
	}
	return k, n, nil
}

// Round is one inventory round's contribution to a session: the slot
// statistics the estimator consumes plus the EPCs the round identified.
type Round struct {
	Stats gen2.Result
	EPCs  []epc.Code
}

// Decision is the stopping-rule verdict after a completed session.
type Decision struct {
	// Sessions completed so far.
	Sessions int
	// Seen is the number of distinct tags any session identified.
	Seen int
	// Confirmed is the number of tags the merge policy confirms.
	Confirmed int
	// Estimate is the population estimate N̂ (floored by Seen — identified
	// tags are a hard lower bound). Meaningless when EstimateOK is false.
	Estimate float64
	// EstimateOK reports whether any round produced a usable estimate.
	// Without one the rule never stops before MaxSessions.
	EstimateOK bool
	// PerSession is the pooled per-session identification probability p̂.
	PerSession float64
	// ExpectedMissed is λ = N̂·P(Bin(S, p̂) < k).
	ExpectedMissed float64
	// Confidence is e^(−λ), the estimated probability no tag is missed.
	Confidence float64
	// Stop reports whether the merge should end now: either the
	// confidence target is met (at or past MinSessions) or MaxSessions
	// is exhausted.
	Stop bool
	// Exhausted reports that MaxSessions forced the stop.
	Exhausted bool
}

// Merger accumulates independent inventory sessions under one merge
// policy. It is not safe for concurrent use.
type Merger struct {
	cfg Config

	sessions    int
	seen        map[epc.Code][]int // 1-based session indices that identified the tag
	totalIdents int                // Σ over sessions of distinct tags identified
	estSum      float64            // Σ of per-session population estimates
	estCount    int

	// open-session state
	open      bool
	curSeen   map[epc.Code]bool
	curBest   float64
	curHasEst bool
}

// NewMerger builds a merger for the given configuration.
func NewMerger(cfg Config) (*Merger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Merger{
		cfg:     cfg.withDefaults(),
		seen:    make(map[epc.Code][]int),
		curSeen: make(map[epc.Code]bool),
	}, nil
}

// Config returns the merger's effective (defaulted) configuration.
func (m *Merger) Config() Config { return m.cfg }

// Sessions returns the number of completed sessions.
func (m *Merger) Sessions() int { return m.sessions }

// BeginSession opens a new independent inventory session.
func (m *Merger) BeginSession() {
	clear(m.curSeen)
	m.curBest = 0
	m.curHasEst = false
	m.open = true
}

// ObserveRound folds one inventory round into the open session. The
// population estimate for the session is the maximum over its rounds of
// (round estimate + tags already identified earlier in the session):
// tags identified — or abandoned after a CRC failure, see
// gen2.Config.AbandonOnCRC — hold the inventoried flag and sit later
// rounds out, so a round's own statistics only cover the shrinking part
// of the population still arbitrating, and the first full-population
// round is typically the session's best view. A saturated or empty round
// contributes no estimate; a malformed round is an error.
func (m *Merger) ObserveRound(stats gen2.Result, epcs []epc.Code) error {
	if !m.open {
		return errors.New("session: ObserveRound outside BeginSession/EndSession")
	}
	// quiet = tags identified in earlier rounds of this session that sat
	// this round out (a re-read tag participated, so it is not quiet).
	prev := len(m.curSeen)
	reread := 0
	for _, c := range epcs {
		if m.curSeen[c] {
			reread++
		} else {
			m.curSeen[c] = true
		}
	}
	quiet := prev - reread
	if quiet < 0 {
		quiet = 0
	}

	est, err := estimate.FromRound(stats)
	switch {
	case err == nil:
		if total := est.N + float64(quiet); total > m.curBest {
			m.curBest = total
		}
		m.curHasEst = true
	case errors.Is(err, estimate.ErrSaturated), errors.Is(err, estimate.ErrNoSlots):
		// No information: a saturated frame bounds the population only
		// from below, and an empty round says nothing.
	default:
		return err
	}
	return nil
}

// EndSession closes the open session and returns the stopping decision.
func (m *Merger) EndSession() Decision {
	if !m.open {
		return m.Decision()
	}
	m.open = false
	m.sessions++
	for c := range m.curSeen {
		m.seen[c] = append(m.seen[c], m.sessions)
	}
	m.totalIdents += len(m.curSeen)
	if m.curHasEst {
		m.estSum += m.curBest
		m.estCount++
	}
	return m.Decision()
}

// AddSession merges one complete session given as its rounds: a
// BeginSession / ObserveRound… / EndSession convenience.
func (m *Merger) AddSession(rounds ...Round) (Decision, error) {
	m.BeginSession()
	for _, r := range rounds {
		if err := m.ObserveRound(r.Stats, r.EPCs); err != nil {
			m.open = false
			return Decision{}, err
		}
	}
	return m.EndSession(), nil
}

// confirmedCount counts tags the merge policy confirms: identified in at
// least Confirm of the last Window sessions (all sessions when Window
// is 0).
func (m *Merger) confirmedCount() int {
	n := 0
	for _, idxs := range m.seen {
		if m.tagConfirmed(idxs) {
			n++
		}
	}
	return n
}

func (m *Merger) tagConfirmed(idxs []int) bool {
	if m.cfg.Window <= 0 {
		return len(idxs) >= m.cfg.Confirm
	}
	cut := m.sessions - m.cfg.Window // sessions > cut are inside the window
	hits := 0
	for _, s := range idxs {
		if s > cut {
			hits++
		}
	}
	return hits >= m.cfg.Confirm
}

// Confirmed returns the confirmed tag set, sorted by EPC bytes.
func (m *Merger) Confirmed() []epc.Code {
	out := make([]epc.Code, 0, len(m.seen))
	for c, idxs := range m.seen {
		if m.tagConfirmed(idxs) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// Seen returns how many sessions identified the given tag.
func (m *Merger) Seen(c epc.Code) int { return len(m.seen[c]) }

// Decision evaluates the stopping rule against the completed sessions.
func (m *Merger) Decision() Decision {
	d := Decision{
		Sessions:  m.sessions,
		Seen:      len(m.seen),
		Confirmed: m.confirmedCount(),
	}
	if m.sessions == 0 {
		return d
	}
	d.EstimateOK = m.estCount > 0
	if d.EstimateOK {
		d.Estimate = math.Max(m.estSum/float64(m.estCount), float64(d.Seen))
	} else {
		d.Estimate = float64(d.Seen)
	}
	if d.Estimate > 0 {
		p := float64(m.totalIdents) / (float64(m.sessions) * d.Estimate)
		d.PerSession = math.Min(math.Max(p, 0), 1)
		d.ExpectedMissed = d.Estimate * binomBelow(m.sessions, d.PerSession, m.cfg.Confirm)
		d.Confidence = math.Exp(-d.ExpectedMissed)
	} else {
		// Nothing present and nothing estimated: vacuously complete.
		d.Confidence = 1
	}
	met := d.EstimateOK && m.sessions >= m.cfg.MinSessions && d.Confidence >= m.cfg.Confidence
	d.Exhausted = m.sessions >= m.cfg.MaxSessions
	d.Stop = met || d.Exhausted
	return d
}

// binomBelow is P(X < k) for X ~ Bin(s, p): the probability one tag is
// identified in fewer than k of s independent sessions.
func binomBelow(s int, p float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return 1
	}
	q := 1 - p
	term := math.Pow(q, float64(s)) // j = 0
	sum := term
	for j := 0; j < k-1 && j < s; j++ {
		term *= float64(s-j) / float64(j+1) * p / q
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}
