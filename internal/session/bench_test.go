package session

import (
	"fmt"
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/gen2"
)

// benchRounds builds S sessions of synthetic rounds over an n-tag
// population: each session identifies a sliding 3/4 of the population
// (so k-of-n policies do real window work) with plausible frame
// statistics for the estimator.
func benchRounds(s, n int) [][]Round {
	codes := make([]epc.Code, n)
	for i := range codes {
		c, err := epc.GID96{Manager: 1, Class: 1, Serial: uint64(i)}.Encode()
		if err != nil {
			panic(err)
		}
		codes[i] = c
	}
	sessions := make([][]Round, s)
	for si := range sessions {
		ids := make([]epc.Code, 0, n)
		for i := 0; i < 3*n/4; i++ {
			ids = append(ids, codes[(si+i)%n])
		}
		singles := len(ids)
		slots := 4 * n
		collisions := n / 8
		sessions[si] = []Round{{
			Stats: gen2.Result{
				Slots:      slots,
				Singles:    singles,
				Collisions: collisions,
				Empties:    slots - singles - collisions,
			},
			EPCs: ids,
		}}
	}
	return sessions
}

// BenchmarkSessionMerge measures the merge pipeline end to end — per-round
// estimator, confirmation bookkeeping, and the stopping rule evaluated
// after every session — at a few population sizes and both policies.
func BenchmarkSessionMerge(b *testing.B) {
	for _, n := range []int{64, 512} {
		for _, cfg := range []struct {
			name string
			conf Config
		}{
			{"union", Config{Confirm: 1, MaxSessions: 1 << 20}},
			{"2of3", Config{Confirm: 2, Window: 3, MaxSessions: 1 << 20}},
		} {
			sessions := benchRounds(8, n)
			b.Run(fmt.Sprintf("tags=%d/%s", n, cfg.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := NewMerger(cfg.conf)
					if err != nil {
						b.Fatal(err)
					}
					for _, rounds := range sessions {
						if _, err := m.AddSession(rounds...); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
