package session

import (
	"fmt"
	"math"
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

func code(serial uint64) epc.Code {
	c, err := epc.GID96{Manager: 5, Class: 5, Serial: serial}.Encode()
	if err != nil {
		panic(err)
	}
	return c
}

// frame builds a Result that satisfies the slot invariant.
func frame(slots, empties, singles, collisions int) gen2.Result {
	return gen2.Result{
		Slots: slots, Empties: empties, Singles: singles,
		Collisions: collisions, CRCFailures: slots - empties - singles - collisions,
	}
}

func TestParseConfirm(t *testing.T) {
	cases := []struct {
		in   string
		k, n int
		err  bool
	}{
		{"union", 1, 0, false},
		{"1", 1, 0, false},
		{"", 1, 0, false},
		{"2-of-3", 2, 3, false},
		{"2-OF-0", 2, 0, false},
		{"3-of-2", 0, 0, true},
		{"0-of-3", 0, 0, true},
		{"garbage", 0, 0, true},
	}
	for _, tc := range cases {
		k, n, err := ParseConfirm(tc.in)
		if (err != nil) != tc.err || k != tc.k || n != tc.n {
			t.Errorf("ParseConfirm(%q) = %d, %d, %v; want %d, %d, err=%v", tc.in, k, n, err, tc.k, tc.n, tc.err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{Confirm: -1},
		{Window: -1},
		{Confirm: 3, Window: 2},
		{Confidence: 1},
		{Confidence: -0.1},
		{Confirm: 2, MaxSessions: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if _, err := NewMerger(Config{Confirm: -1}); err == nil {
		t.Error("NewMerger accepted invalid config")
	}
}

func TestUnionMergeConfirmsOnFirstSight(t *testing.T) {
	m, err := NewMerger(Config{Confidence: 0.9, MaxSessions: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Session 1 sees tags 1 and 2 in a lightly loaded frame.
	d, err := m.AddSession(Round{
		Stats: frame(16, 14, 2, 0),
		EPCs:  []epc.Code{code(1), code(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Seen != 2 || d.Confirmed != 2 {
		t.Errorf("union after one session: %+v", d)
	}
	if !d.EstimateOK || d.Estimate < 2 {
		t.Errorf("estimate missing: %+v", d)
	}
	if m.Seen(code(1)) != 1 || m.Seen(code(3)) != 0 {
		t.Error("per-tag session counts wrong")
	}
}

func TestKOfNConfirmationAndWindow(t *testing.T) {
	m, err := NewMerger(Config{Confirm: 2, Window: 3, MaxSessions: 16})
	if err != nil {
		t.Fatal(err)
	}
	add := func(codes ...epc.Code) Decision {
		d, err := m.AddSession(Round{Stats: frame(16, 15, 1, 0), EPCs: codes})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d := add(code(1)) // session 1
	if d.Confirmed != 0 {
		t.Errorf("confirmed after one sighting: %+v", d)
	}
	d = add(code(1)) // session 2: second sighting inside window
	if d.Confirmed != 1 {
		t.Errorf("2-of-3 not confirmed after two sightings: %+v", d)
	}
	got := m.Confirmed()
	if len(got) != 1 || got[0] != code(1) {
		t.Errorf("Confirmed() = %v", got)
	}
	// Sessions 3-5 never see the tag: the window slides past both
	// sightings and confirmation lapses.
	add()
	add()
	d = add()
	if d.Confirmed != 0 {
		t.Errorf("confirmation survived window slide: %+v", d)
	}
	if d.Seen != 1 {
		t.Errorf("seen set should persist: %+v", d)
	}
}

func TestStoppingRuleStopsWhenConfident(t *testing.T) {
	m, err := NewMerger(Config{Confidence: 0.95, MaxSessions: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Two tags, both identified every session, estimator agreeing with
	// the identified set: confidence must rise with sessions and stop.
	tags := []epc.Code{code(1), code(2)}
	stopped := 0
	var last Decision
	for s := 1; s <= 32; s++ {
		last, err = m.AddSession(Round{Stats: frame(16, 14, 2, 0), EPCs: tags})
		if err != nil {
			t.Fatal(err)
		}
		if last.Stop {
			stopped = s
			break
		}
	}
	if stopped == 0 || stopped == 32 {
		t.Fatalf("never stopped before exhaustion: %+v", last)
	}
	if last.Exhausted {
		t.Errorf("stop flagged as exhaustion: %+v", last)
	}
	if last.Confidence < 0.95 {
		t.Errorf("stopped below target: %+v", last)
	}
	if last.PerSession <= 0.5 {
		t.Errorf("pooled per-session probability %v, want near 1", last.PerSession)
	}
}

func TestStoppingRuleHoldsWhenEstimateSaysMore(t *testing.T) {
	m, err := NewMerger(Config{Confidence: 0.95, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The estimator keeps seeing a heavily loaded frame (~32 tags) while
	// only 2 are ever identified: confidence must stay low until
	// MaxSessions forces the stop.
	var d Decision
	for s := 1; s <= 4; s++ {
		d, err = m.AddSession(Round{Stats: frame(16, 2, 2, 12), EPCs: []epc.Code{code(1), code(2)}})
		if err != nil {
			t.Fatal(err)
		}
		if d.Stop && !d.Exhausted {
			t.Fatalf("stopped at session %d despite missing tags: %+v", s, d)
		}
	}
	if !d.Stop || !d.Exhausted {
		t.Errorf("MaxSessions did not force the stop: %+v", d)
	}
	if d.Confidence >= 0.95 {
		t.Errorf("confidence %v with estimate %v >> seen %d", d.Confidence, d.Estimate, d.Seen)
	}
}

func TestNoEstimateNeverStopsEarly(t *testing.T) {
	m, err := NewMerger(Config{Confidence: 0.5, MaxSessions: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Every frame is saturated: no round yields an estimate, so the rule
	// must not stop before exhaustion no matter the union coverage.
	var d Decision
	for s := 1; s <= 6; s++ {
		d, err = m.AddSession(Round{Stats: frame(8, 0, 0, 8), EPCs: []epc.Code{code(1)}})
		if err != nil {
			t.Fatal(err)
		}
		if d.EstimateOK {
			t.Fatalf("saturated frames produced an estimate: %+v", d)
		}
		if d.Stop != (s == 6) {
			t.Fatalf("session %d: stop = %v: %+v", s, d.Stop, d)
		}
	}
	if !d.Exhausted {
		t.Errorf("final stop not marked exhausted: %+v", d)
	}
}

func TestObserveRoundPropagatesMalformedRounds(t *testing.T) {
	m, err := NewMerger(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.AddSession(Round{Stats: gen2.Result{Slots: 8, Empties: 12}})
	if err == nil {
		t.Error("malformed round accepted")
	}
	if m.Sessions() != 0 {
		t.Error("failed session counted")
	}
	if err := m.ObserveRound(frame(8, 8, 0, 0), nil); err == nil {
		t.Error("ObserveRound accepted outside an open session")
	}
}

func TestQuietCorrectionRaisesSessionEstimate(t *testing.T) {
	// Round 1 identifies 6 tags; round 2's frame only sees the remainder
	// (~6 estimated) but the session estimate must include the 6 quiet
	// ones.
	m, err := NewMerger(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var epcs []epc.Code
	for i := 0; i < 6; i++ {
		epcs = append(epcs, code(uint64(i)))
	}
	m.BeginSession()
	if err := m.ObserveRound(frame(16, 6, 6, 4), epcs); err != nil {
		t.Fatal(err)
	}
	// 16-slot frame, 6 empties: ZE says ~15.7 participated.
	if err := m.ObserveRound(frame(16, 11, 2, 3), []epc.Code{code(10), code(11)}); err != nil {
		t.Fatal(err)
	}
	// Round 2: ZE over 11/16 empties ≈ 6.0 participants + 6 quiet ≈ 12.
	d := m.EndSession()
	if !d.EstimateOK {
		t.Fatal("no estimate")
	}
	// The max over rounds is round 1's ~15.7; the quiet-corrected round 2
	// (~12) must not have replaced it, and the floor is Seen = 8.
	if d.Estimate < 15 || d.Estimate > 17 {
		t.Errorf("session estimate = %v, want ~15.7", d.Estimate)
	}
}

func TestBinomBelow(t *testing.T) {
	// P(X < 1) with X ~ Bin(3, 0.5) = 0.125; P(X < 2) = 0.5.
	if got := binomBelow(3, 0.5, 1); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("P(X<1) = %v", got)
	}
	if got := binomBelow(3, 0.5, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(X<2) = %v", got)
	}
	if got := binomBelow(5, 0, 2); got != 1 {
		t.Errorf("p=0 tail = %v", got)
	}
	if got := binomBelow(5, 1, 2); got != 0 {
		t.Errorf("p=1 tail = %v", got)
	}
	if got := binomBelow(5, 0.5, 0); got != 0 {
		t.Errorf("k=0 tail = %v", got)
	}
}

// TestMergerAgainstRealRounds drives the merger with the actual Gen-2
// engine end to end: a fixed population inventoried with fixed frames and
// reply corruption must be fully identified (union) by the time the
// stopping rule fires, and the population estimate must land near truth.
func TestMergerAgainstRealRounds(t *testing.T) {
	parent := xrand.New(21)
	const n = 40
	m, err := NewMerger(Config{Confidence: 0.99, MaxSessions: 24})
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]*tagsim.Tag, n)
	codes := make([]epc.Code, n)
	for i := range tags {
		codes[i] = code(uint64(100 + i))
		tags[i] = tagsim.New(codes[i], parent.Split(fmt.Sprintf("tag/%d", i)))
	}
	parts := make([]gen2.Participant, n)
	var d Decision
	for s := 1; s <= 24; s++ {
		for i, tag := range tags {
			tag.ResetForPass(s)
			tag.SetPower(true, 0)
			parts[i] = gen2.Participant{Tag: tag, ForwardOK: true, ReverseOK: true}
		}
		cfg := gen2.DefaultConfig()
		cfg.Adaptive = false
		cfg.InitialQ = 6 // 64-slot frames
		cfg.ReplyCorruptionProb = 0.05
		cfg.Rng = parent.Split(fmt.Sprintf("noise/%d", s))
		res := gen2.RunRound(cfg, parts, 0)
		epcs := make([]epc.Code, 0, len(res.Reads))
		for _, r := range res.Reads {
			epcs = append(epcs, r.EPC)
		}
		d, err = m.AddSession(Round{Stats: res, EPCs: epcs})
		if err != nil {
			t.Fatal(err)
		}
		if d.Stop {
			break
		}
	}
	if !d.Stop {
		t.Fatalf("never stopped: %+v", d)
	}
	if d.Exhausted {
		t.Fatalf("exhausted before confident: %+v", d)
	}
	if d.Seen != n {
		t.Errorf("stopped with %d/%d tags identified", d.Seen, n)
	}
	// The engine lets colliding tags re-contend inside the frame, which
	// depresses empties below the static framed-ALOHA model and biases
	// the estimate high — conservative for stopping (the rule holds
	// longer, never quits early). Accept the engine-side bias here.
	if d.Estimate < n || d.Estimate > 2*n {
		t.Errorf("population estimate %v for %d tags outside [n, 2n]", d.Estimate, n)
	}
}
