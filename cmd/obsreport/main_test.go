package main

import (
	"strings"
	"testing"
	"time"

	"rfidtrack/internal/obs"
)

// manifest builds a small synthetic manifest with one counter, one
// histogram, and two opportunity series at the given read counts.
func manifest(readsA, readsB uint64) obs.Manifest {
	snap := obs.Snapshot{
		Counters: map[string]uint64{
			"pass.count":  4,
			"round.count": 12,
		},
		Histograms: map[string]obs.HistSnapshot{
			"pass.rounds": {
				Count: 4,
				Buckets: []obs.HistBucket{
					{Le: "2", Count: 1},
					{Le: "3", Count: 3},
				},
			},
		},
		Opportunities: []obs.OpportunitySnapshot{
			{Tag: "pallet-top", Antenna: "left", Read: readsA, Missed: 10 - readsA},
			{Tag: "pallet-bottom", Antenna: "right", Read: readsB, Deaf: 10 - readsB},
		},
		WallTime: &obs.WallSnapshot{TotalSeconds: 0.5},
	}
	return obs.Manifest{
		Tool:            "rfsim",
		Experiments:     []string{"fig2"},
		Seed:            7,
		Trials:          4,
		Workers:         2,
		GoVersion:       "go1.24",
		GitRevision:     "abc123",
		Start:           time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		DurationSeconds: 1.25,
		Timings:         map[string]float64{"fig2": 1.25},
		Metrics:         &snap,
	}
}

func TestRender(t *testing.T) {
	got := render(manifest(9, 2), 20)
	for _, want := range []string{
		"run: rfsim  seed=7 trials=4 workers=2",
		"rev: abc123",
		"experiments: fig2",
		"pass.count",
		"round.count",
		"pass.rounds",
		"le 2",
		"wall time: 0.50s",
		"read opportunities, worst first (2 series)",
		"pallet-bottom",
		"20.0%",
		"90.0%",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render output missing %q:\n%s", want, got)
		}
	}
	// Worst series first.
	if strings.Index(got, "pallet-bottom") > strings.Index(got, "pallet-top") {
		t.Errorf("opportunities not sorted worst-first:\n%s", got)
	}
}

func TestRenderTruncatesOpportunities(t *testing.T) {
	got := render(manifest(9, 2), 1)
	if !strings.Contains(got, "1 more") {
		t.Errorf("truncation note missing with -top 1:\n%s", got)
	}
	got = render(manifest(9, 2), 0)
	if strings.Contains(got, "more") {
		t.Errorf("-top 0 should render every series:\n%s", got)
	}
}

func TestRenderWithoutMetrics(t *testing.T) {
	m := manifest(1, 1)
	m.Metrics = nil
	got := render(m, 20)
	if !strings.Contains(got, "no metric snapshot") {
		t.Errorf("missing no-snapshot note:\n%s", got)
	}
}

func TestCompare(t *testing.T) {
	a, b := manifest(9, 2), manifest(9, 6)
	b.Metrics.Counters["round.count"] = 15
	got := compare("A.json", "B.json", a, b)
	for _, want := range []string{
		"old: A.json (seed=7",
		"new: B.json (seed=7",
		"round.count",
		"12 -> 15",
		"*", // changed-counter marker
		"opportunity read rates, largest change first",
		"pallet-bottom",
		"+40.0 pts",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
	// Unchanged counters carry no marker line.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "pass.count") && strings.Contains(line, "*") {
			t.Errorf("unchanged counter marked as changed: %q", line)
		}
	}
	// The biggest mover sorts first.
	if strings.Index(got, "pallet-bottom") > strings.Index(got, "pallet-top") {
		t.Errorf("rate deltas not sorted largest-first:\n%s", got)
	}
}

func TestBar(t *testing.T) {
	if bar(0, 0) != "" {
		t.Error("bar with zero total should be empty")
	}
	if got := bar(10, 10); got != strings.Repeat("#", 40) {
		t.Errorf("full bar = %q", got)
	}
	if got := bar(5, 10); got != strings.Repeat("#", 20) {
		t.Errorf("half bar = %q", got)
	}
}
