package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rfidtrack/internal/obs"
)

// manifest builds a small synthetic manifest with one counter, one
// histogram, and two opportunity series at the given read counts.
func manifest(readsA, readsB uint64) obs.Manifest {
	snap := obs.Snapshot{
		Counters: map[string]uint64{
			"pass.count":  4,
			"round.count": 12,
		},
		Histograms: map[string]obs.HistSnapshot{
			"pass.rounds": {
				Count: 4,
				Buckets: []obs.HistBucket{
					{Le: "2", Count: 1},
					{Le: "3", Count: 3},
				},
			},
		},
		Opportunities: []obs.OpportunitySnapshot{
			{Tag: "pallet-top", Antenna: "left", Read: readsA, Missed: 10 - readsA},
			{Tag: "pallet-bottom", Antenna: "right", Read: readsB, Deaf: 10 - readsB},
		},
		WallTime: &obs.WallSnapshot{TotalSeconds: 0.5},
	}
	return obs.Manifest{
		Tool:            "rfsim",
		Experiments:     []string{"fig2"},
		Seed:            7,
		Trials:          4,
		Workers:         2,
		GoVersion:       "go1.24",
		GitRevision:     "abc123",
		Start:           time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		DurationSeconds: 1.25,
		Timings:         map[string]float64{"fig2": 1.25},
		Metrics:         &snap,
	}
}

func TestRender(t *testing.T) {
	got := render(manifest(9, 2), 20)
	for _, want := range []string{
		"run: rfsim  seed=7 trials=4 workers=2",
		"rev: abc123",
		"experiments: fig2",
		"pass.count",
		"round.count",
		"pass.rounds",
		"le 2",
		"wall time: 0.50s",
		"read opportunities, worst first (2 series)",
		"pallet-bottom",
		"20.0%",
		"90.0%",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render output missing %q:\n%s", want, got)
		}
	}
	// Worst series first.
	if strings.Index(got, "pallet-bottom") > strings.Index(got, "pallet-top") {
		t.Errorf("opportunities not sorted worst-first:\n%s", got)
	}
}

func TestRenderTruncatesOpportunities(t *testing.T) {
	got := render(manifest(9, 2), 1)
	if !strings.Contains(got, "1 more") {
		t.Errorf("truncation note missing with -top 1:\n%s", got)
	}
	got = render(manifest(9, 2), 0)
	if strings.Contains(got, "more") {
		t.Errorf("-top 0 should render every series:\n%s", got)
	}
}

func TestRenderWithoutMetrics(t *testing.T) {
	m := manifest(1, 1)
	m.Metrics = nil
	got := render(m, 20)
	if !strings.Contains(got, "no metric snapshot") {
		t.Errorf("missing no-snapshot note:\n%s", got)
	}
}

func TestCompare(t *testing.T) {
	a, b := manifest(9, 2), manifest(9, 6)
	b.Metrics.Counters["round.count"] = 15
	got := compare("A.json", "B.json", a, b)
	for _, want := range []string{
		"old: A.json (seed=7",
		"new: B.json (seed=7",
		"round.count",
		"12 -> 15",
		"*", // changed-counter marker
		"opportunity read rates, largest change first",
		"pallet-bottom",
		"+40.0 pts",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
	// Unchanged counters carry no marker line.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "pass.count") && strings.Contains(line, "*") {
			t.Errorf("unchanged counter marked as changed: %q", line)
		}
	}
	// The biggest mover sorts first.
	if strings.Index(got, "pallet-bottom") > strings.Index(got, "pallet-top") {
		t.Errorf("rate deltas not sorted largest-first:\n%s", got)
	}
}

func TestBar(t *testing.T) {
	if bar(0, 0) != "" {
		t.Error("bar with zero total should be empty")
	}
	if got := bar(10, 10); got != strings.Repeat("#", 40) {
		t.Errorf("full bar = %q", got)
	}
	if got := bar(5, 10); got != strings.Repeat("#", 20) {
		t.Errorf("half bar = %q", got)
	}
}

// liveExposition builds a real exposition by populating an obs.Live and
// rendering its registry — scrape tests exercise the same bytes the
// service serves.
func liveExposition(t *testing.T, polls uint64) []byte {
	t.Helper()
	live := obs.NewLive()
	for i := uint64(0); i < polls; i++ {
		live.Inc(obs.CtrPollAttempts)
	}
	live.Observe(obs.HistPollMicros, 500)
	reg := obs.NewRegistry(live)
	reg.Gauge("queue_depth", "Test gauge.", func() []obs.Sample {
		return []obs.Sample{{Value: 3}}
	})
	var buf strings.Builder
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	return []byte(buf.String())
}

func TestScrapeRenderFromFile(t *testing.T) {
	path := t.TempDir() + "/metrics.txt"
	if err := os.WriteFile(path, liveExposition(t, 7), 0o644); err != nil {
		t.Fatal(err)
	}
	fams, err := fetchExposition(path)
	if err != nil {
		t.Fatalf("fetchExposition(file): %v", err)
	}
	got := renderScrape(fams)
	for _, want := range []string{
		"rfidtrack_poll_attempts (counter)",
		"rfidtrack_poll_micros (histogram) n=1",
		"rfidtrack_queue_depth (gauge)",
		"_total",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape render missing %q:\n%s", want, got)
		}
	}
}

func TestScrapeRenderFromURL(t *testing.T) {
	body := liveExposition(t, 2)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		w.Write(body)
	}))
	defer srv.Close()
	fams, err := fetchExposition(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("fetchExposition(url): %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("no families parsed from scrape URL")
	}
}

func TestScrapeRejectsMalformed(t *testing.T) {
	path := t.TempDir() + "/bad.txt"
	if err := os.WriteFile(path, []byte("rfidtrack_x_total 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fetchExposition(path); err == nil {
		t.Fatal("malformed exposition accepted")
	}
}

func TestCompareScrapes(t *testing.T) {
	a, err := obs.ParseExposition(strings.NewReader(string(liveExposition(t, 2))))
	if err != nil {
		t.Fatal(err)
	}
	b, err := obs.ParseExposition(strings.NewReader(string(liveExposition(t, 9))))
	if err != nil {
		t.Fatal(err)
	}
	got := compareScrapes("A", "B", a, b)
	for _, want := range []string{
		"old: A",
		"new: B",
		"rfidtrack_poll_attempts_total",
		"2 -> 9",
		"*",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape compare missing %q:\n%s", want, got)
		}
	}
	// Largest change sorts first: poll_attempts (Δ7) beats the unchanged
	// queue gauge.
	if strings.Index(got, "rfidtrack_poll_attempts_total") > strings.Index(got, "rfidtrack_queue_depth") {
		t.Errorf("scrape compare not sorted by |delta|:\n%s", got)
	}
	// Histogram buckets stay out of the diff.
	if strings.Contains(got, "_bucket") {
		t.Errorf("scrape compare includes raw buckets:\n%s", got)
	}
}

func TestRenderLive(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/health", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{"status":"degraded","sightings":12,"readers":[{"name":"r1","breaker":"closed","polls":40,"failures":2,"retries":3,"breaker_opens":1}],"slo":{"verdict":"violating","reliability":0.75,"target":0.99,"window_seconds":30,"population":4,"readers":[{"name":"r1","tags":2,"rate":0.5}]}}`)
	})
	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{"uptime_seconds":62,"events_per_sec":9.5,"counters":{"ingest.events":590},"queue":{"length":0,"capacity":256}}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	got, err := renderLive(srv.URL)
	if err != nil {
		t.Fatalf("renderLive: %v", err)
	}
	for _, want := range []string{
		"status=degraded",
		"uptime=62s",
		"breaker=closed",
		"verdict=violating",
		"reliability=0.7500",
		"rate=0.5000",
		"ingest.events",
		"590",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("live render missing %q:\n%s", want, got)
		}
	}
}
