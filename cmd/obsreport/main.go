// Command obsreport renders and compares the run manifests the
// measurement engine's instrumentation layer emits (see internal/obs and
// `experiments -metrics` / `rfsim -metrics`).
//
// Usage:
//
//	obsreport RUN.manifest.json            render one manifest
//	obsreport -old A.json -new B.json      compare two manifests
//	obsreport -top 30 RUN.manifest.json    widen the opportunity table
//	obsreport -scrape URL|FILE             render a live /metrics exposition
//	obsreport -scrape-old A -scrape-new B  diff two scrapes (URL or file each)
//	obsreport -live URL                    render a service's /api/stats + /api/health
//
// Render mode prints the run header (seed, workers, revision, timings),
// every counter, each histogram, and the per-(tag, antenna) read
// opportunities sorted worst-first — the series that explains *which*
// links caused correlated misses when redundancy underperforms the
// R_C = 1 − Π(1−Pᵢ) independence model. Compare mode diffs the counters
// and per-opportunity read rates of two runs.
//
// Scrape mode (DESIGN.md §12) speaks to the running service instead of a
// finished run: -scrape fetches (or reads) an OpenMetrics exposition —
// trackd's or readerd's GET /metrics — validates it, and renders every
// family; -scrape-old/-scrape-new diff two scrapes series by series, the
// live analogue of manifest compare; -live renders the operator's
// one-glance view from trackd's JSON endpoints, including the streaming
// reliability verdict when the SLO monitor is enabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"rfidtrack/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obsreport: ")
	oldPath := flag.String("old", "", "compare mode: baseline manifest")
	newPath := flag.String("new", "", "compare mode: candidate manifest")
	top := flag.Int("top", 20, "render mode: opportunity rows to show (0 = all)")
	scrape := flag.String("scrape", "", "render a live OpenMetrics exposition (URL or file)")
	scrapeOld := flag.String("scrape-old", "", "scrape-compare mode: baseline exposition (URL or file)")
	scrapeNew := flag.String("scrape-new", "", "scrape-compare mode: candidate exposition (URL or file)")
	liveURL := flag.String("live", "", "render a tracking service's /api/stats and /api/health (base URL)")
	flag.Parse()

	switch {
	case *scrape != "":
		fams, err := fetchExposition(*scrape)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(renderScrape(fams))
	case *scrapeOld != "" && *scrapeNew != "":
		a, err := fetchExposition(*scrapeOld)
		if err != nil {
			log.Fatal(err)
		}
		b, err := fetchExposition(*scrapeNew)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(compareScrapes(*scrapeOld, *scrapeNew, a, b))
	case *scrapeOld != "" || *scrapeNew != "":
		log.Fatal("scrape-compare mode needs both -scrape-old and -scrape-new")
	case *liveURL != "":
		out, err := renderLive(*liveURL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case *oldPath != "" && *newPath != "":
		a, err := obs.ReadManifest(*oldPath)
		if err != nil {
			log.Fatal(err)
		}
		b, err := obs.ReadManifest(*newPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(compare(*oldPath, *newPath, a, b))
	case *oldPath != "" || *newPath != "":
		log.Fatal("compare mode needs both -old and -new")
	case flag.NArg() == 1:
		m, err := obs.ReadManifest(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(render(m, *top))
	default:
		fmt.Fprintln(os.Stderr, "usage: obsreport MANIFEST.json | obsreport -old A.json -new B.json |")
		fmt.Fprintln(os.Stderr, "       obsreport -scrape URL|FILE | obsreport -scrape-old A -scrape-new B |")
		fmt.Fprintln(os.Stderr, "       obsreport -live URL")
		os.Exit(2)
	}
}

// fetchExposition loads an OpenMetrics exposition from an http(s) URL or
// a local file and parses (and thereby validates) it.
func fetchExposition(target string) ([]obs.Family, error) {
	var r io.ReadCloser
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		hc := &http.Client{Timeout: 10 * time.Second}
		resp, err := hc.Get(target)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("scrape %s: status %s", target, resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(target)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	fams, err := obs.ParseExposition(r)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", target, err)
	}
	return fams, nil
}

// seriesKey is one sample's identity within a scrape.
func seriesKey(s obs.ParsedSample) string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// renderScrape formats one live exposition for terminal reading:
// counters and gauges as aligned name/value rows, histograms as their
// cumulative buckets with proportional bars.
func renderScrape(fams []obs.Family) string {
	var sb strings.Builder
	for _, f := range fams {
		switch f.Type {
		case "histogram":
			var total uint64
			for _, s := range f.Samples {
				if strings.HasSuffix(s.Name, "_count") {
					total = uint64(s.Value)
				}
			}
			fmt.Fprintf(&sb, "%s (histogram) n=%d  # %s\n", f.Name, total, f.Help)
			for _, s := range f.Samples {
				if !strings.HasSuffix(s.Name, "_bucket") {
					continue
				}
				fmt.Fprintf(&sb, "    le %-8s %10.0f %s\n", s.Label("le"), s.Value, bar(uint64(s.Value), total))
			}
		default:
			fmt.Fprintf(&sb, "%s (%s)  # %s\n", f.Name, f.Type, f.Help)
			for _, s := range f.Samples {
				name := seriesKey(s)
				fmt.Fprintf(&sb, "    %-48s %12g\n", strings.TrimPrefix(name, f.Name), s.Value)
			}
		}
	}
	return sb.String()
}

// compareScrapes diffs two live expositions series by series, largest
// absolute change first, skipping histogram buckets (the _sum and _count
// series carry the comparison).
func compareScrapes(oldName, newName string, a, b []obs.Family) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "old: %s\nnew: %s\n\n", oldName, newName)
	va, vb := map[string]float64{}, map[string]float64{}
	for _, f := range a {
		for _, s := range f.Samples {
			if !strings.HasSuffix(s.Name, "_bucket") {
				va[seriesKey(s)] = s.Value
			}
		}
	}
	for _, f := range b {
		for _, s := range f.Samples {
			if !strings.HasSuffix(s.Name, "_bucket") {
				vb[seriesKey(s)] = s.Value
			}
		}
	}
	keys := map[string]bool{}
	for k := range va {
		keys[k] = true
	}
	for k := range vb {
		keys[k] = true
	}
	names := sortedKeys(keys)
	sort.SliceStable(names, func(i, j int) bool {
		return math.Abs(vb[names[i]]-va[names[i]]) > math.Abs(vb[names[j]]-va[names[j]])
	})
	for _, k := range names {
		mark := ""
		if va[k] != vb[k] {
			mark = "  *"
		}
		fmt.Fprintf(&sb, "  %-52s %12g -> %-12g%s\n", k, va[k], vb[k], mark)
	}
	return sb.String()
}

// renderLive fetches and formats the service's operator view: health
// (breakers, SLO verdict) and stats (ingest counters, queue, shards).
func renderLive(base string) (string, error) {
	base = strings.TrimRight(base, "/")
	hc := &http.Client{Timeout: 10 * time.Second}
	var health, stats map[string]any
	for path, dst := range map[string]*map[string]any{
		"/api/health": &health,
		"/api/stats":  &stats,
	} {
		resp, err := hc.Get(base + path)
		if err != nil {
			return "", err
		}
		err = json.NewDecoder(resp.Body).Decode(dst)
		resp.Body.Close()
		if err != nil {
			return "", fmt.Errorf("GET %s%s: %w", base, path, err)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "service: %s  status=%v  sightings=%v  uptime=%.0fs\n",
		base, health["status"], health["sightings"], num(stats["uptime_seconds"]))
	if readers, ok := health["readers"].([]any); ok && len(readers) > 0 {
		sb.WriteString("readers:\n")
		for _, r := range readers {
			m, _ := r.(map[string]any)
			fmt.Fprintf(&sb, "  %-32v breaker=%-9v polls=%v failures=%v retries=%v opens=%v\n",
				m["name"], m["breaker"], m["polls"], m["failures"], m["retries"], m["breaker_opens"])
		}
	}
	if slo, ok := health["slo"].(map[string]any); ok {
		fmt.Fprintf(&sb, "slo: verdict=%v reliability=%.4f target=%v window=%vs population=%v\n",
			slo["verdict"], num(slo["reliability"]), slo["target"], slo["window_seconds"], slo["population"])
		if rs, ok := slo["readers"].([]any); ok {
			for _, r := range rs {
				m, _ := r.(map[string]any)
				fmt.Fprintf(&sb, "  %-32v rate=%.4f tags=%v\n", m["name"], num(m["rate"]), m["tags"])
			}
		}
	}
	fmt.Fprintf(&sb, "ingest: %.0f events/s  queue=%v\n", num(stats["events_per_sec"]), stats["queue"])
	if counters, ok := stats["counters"].(map[string]any); ok {
		for _, k := range sortedKeys(counters) {
			fmt.Fprintf(&sb, "  %-22s %12.0f\n", k, num(counters[k]))
		}
	}
	return sb.String(), nil
}

// num coerces a decoded JSON value to float64 (0 when absent).
func num(v any) float64 {
	f, _ := v.(float64)
	return f
}

// render formats one manifest for terminal reading.
func render(m obs.Manifest, top int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "run: %s  seed=%d trials=%d workers=%d\n", m.Tool, m.Seed, m.Trials, m.Workers)
	fmt.Fprintf(&sb, "rev: %s  %s  %.1fs", m.GitRevision, m.GoVersion, m.DurationSeconds)
	if !m.Start.IsZero() {
		fmt.Fprintf(&sb, "  started %s", m.Start.Format("2006-01-02 15:04:05 MST"))
	}
	sb.WriteString("\n")
	if len(m.Experiments) > 0 {
		fmt.Fprintf(&sb, "experiments: %s\n", strings.Join(m.Experiments, " "))
	}
	if len(m.Timings) > 0 {
		ids := sortedKeys(m.Timings)
		sort.Slice(ids, func(i, j int) bool { return m.Timings[ids[i]] > m.Timings[ids[j]] })
		sb.WriteString("slowest experiments:")
		for i, id := range ids {
			if i == 5 {
				break
			}
			fmt.Fprintf(&sb, " %s=%.2fs", id, m.Timings[id])
		}
		sb.WriteString("\n")
	}
	if m.Metrics == nil {
		sb.WriteString("\n(no metric snapshot in manifest)\n")
		return sb.String()
	}
	s := *m.Metrics

	sb.WriteString("\ncounters:\n")
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "  %-22s %12d\n", name, s.Counters[name])
	}
	if links := s.Counters["grid.links"]; links > 0 {
		fmt.Fprintf(&sb, "  %-22s %11.1f%%  (%d of %d grid links skipped by the broad-phase culler)\n",
			"grid culled fraction", 100*float64(s.Counters["grid.culled"])/float64(links),
			s.Counters["grid.culled"], links)
	}

	sb.WriteString("\nhistograms (le = inclusive upper bound):\n")
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&sb, "  %-22s n=%d\n", name, h.Count)
		for _, b := range h.Buckets {
			fmt.Fprintf(&sb, "    le %-8s %10d %s\n", b.Le, b.Count, bar(b.Count, h.Count))
		}
	}
	if s.WallTime != nil {
		fmt.Fprintf(&sb, "\nwall time: %.2fs of simulated passes\n", s.WallTime.TotalSeconds)
		for _, b := range s.WallTime.PassMicros.Buckets {
			fmt.Fprintf(&sb, "    le %-8sµs %8d %s\n", b.Le, b.Count, bar(b.Count, s.WallTime.PassMicros.Count))
		}
	}

	if s.Cache != nil {
		c := s.Cache
		sb.WriteString("\ncaches (replica-dependent, stripped from canonical diffs):\n")
		fmt.Fprintf(&sb, "  %-22s hits=%-10d misses=%-10d hit rate %5.1f%%\n",
			"budget-terms", c.LinkHits, c.LinkMisses, 100*c.HitRate())
		if c.GridTermHits+c.GridTermFills > 0 {
			fmt.Fprintf(&sb, "  %-22s hits=%-10d fills=%-10d hit rate %5.1f%%\n",
				"grid columns", c.GridTermHits, c.GridTermFills, 100*c.GridHitRate())
		}
	}

	if len(s.Opportunities) > 0 {
		opps := append([]obs.OpportunitySnapshot(nil), s.Opportunities...)
		sort.Slice(opps, func(i, j int) bool { return rate(opps[i]) < rate(opps[j]) })
		fmt.Fprintf(&sb, "\nread opportunities, worst first (%d series):\n", len(opps))
		fmt.Fprintf(&sb, "  %-24s %-10s %8s %8s %8s %8s %8s\n",
			"tag", "antenna", "P(read)", "read", "missed", "fwd-only", "deaf")
		for i, o := range opps {
			if top > 0 && i >= top {
				fmt.Fprintf(&sb, "  … %d more (rerun with -top 0)\n", len(opps)-top)
				break
			}
			fmt.Fprintf(&sb, "  %-24s %-10s %7.1f%% %8d %8d %8d %8d\n",
				o.Tag, o.Antenna, 100*rate(o), o.Read, o.Missed, o.ForwardOnly, o.Deaf)
		}
	}
	return sb.String()
}

// compare diffs the deterministic metrics of two manifests.
func compare(oldName, newName string, a, b obs.Manifest) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "old: %s (seed=%d trials=%d workers=%d rev=%s)\n", oldName, a.Seed, a.Trials, a.Workers, a.GitRevision)
	fmt.Fprintf(&sb, "new: %s (seed=%d trials=%d workers=%d rev=%s)\n", newName, b.Seed, b.Trials, b.Workers, b.GitRevision)
	if a.Metrics == nil || b.Metrics == nil {
		sb.WriteString("(one of the manifests has no metric snapshot)\n")
		return sb.String()
	}
	sb.WriteString("\ncounters:\n")
	names := map[string]bool{}
	for n := range a.Metrics.Counters {
		names[n] = true
	}
	for n := range b.Metrics.Counters {
		names[n] = true
	}
	for _, n := range sortedKeys(names) {
		va, vb := a.Metrics.Counters[n], b.Metrics.Counters[n]
		mark := ""
		if va != vb {
			mark = "  *"
		}
		fmt.Fprintf(&sb, "  %-22s %12d -> %-12d%s\n", n, va, vb, mark)
	}

	type pair struct{ tag, ant string }
	rates := map[pair][2]float64{}
	for _, o := range a.Metrics.Opportunities {
		rates[pair{o.Tag, o.Antenna}] = [2]float64{rate(o), math.NaN()}
	}
	for _, o := range b.Metrics.Opportunities {
		r := rates[pair{o.Tag, o.Antenna}]
		if _, ok := rates[pair{o.Tag, o.Antenna}]; !ok {
			r[0] = math.NaN()
		}
		r[1] = rate(o)
		rates[pair{o.Tag, o.Antenna}] = r
	}
	keys := make([]pair, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		di := math.Abs(rates[keys[i]][1] - rates[keys[i]][0])
		dj := math.Abs(rates[keys[j]][1] - rates[keys[j]][0])
		return di > dj
	})
	if len(keys) > 0 {
		sb.WriteString("\nopportunity read rates, largest change first:\n")
		for i, k := range keys {
			if i >= 20 {
				fmt.Fprintf(&sb, "  … %d more\n", len(keys)-20)
				break
			}
			r := rates[k]
			fmt.Fprintf(&sb, "  %-24s %-10s %7.1f%% -> %6.1f%%  (%+.1f pts)\n",
				k.tag, k.ant, 100*r[0], 100*r[1], 100*(r[1]-r[0]))
		}
	}
	return sb.String()
}

// rate is ReadRate with NaN mapped to 0 for sorting and display.
func rate(o obs.OpportunitySnapshot) float64 {
	r := o.ReadRate()
	if math.IsNaN(r) {
		return 0
	}
	return r
}

// bar renders a proportional ASCII bar.
func bar(n, total uint64) string {
	if total == 0 {
		return ""
	}
	w := int(40 * float64(n) / float64(total))
	return strings.Repeat("#", w)
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
