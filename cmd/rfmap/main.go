// Command rfmap renders an ASCII heat map of the forward-link margin
// across a horizontal plane of the portal's read zone — the quickest way
// to see where a portal can and cannot power a tag, and what an obstacle
// does to the zone.
//
// Usage:
//
//	rfmap [-antennas 1|2] [-height 1.0] [-span 8] [-depth 6] [-blocker] [-explain x,y]
//
// Each cell shows the margin (dB above chip sensitivity) of a well-
// oriented test tag at that position: '#' strong, '+' comfortable,
// '.' marginal, ' ' dead. With -explain, prints the itemized link budget
// at one position instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

func main() {
	antennas := flag.Int("antennas", 1, "portal antennas (1 or 2, facing)")
	height := flag.Float64("height", 1.0, "probe plane height, meters")
	span := flag.Float64("span", 8, "x extent (meters, centered on the portal)")
	depth := flag.Float64("depth", 6, "y extent (meters, in front of antenna 1)")
	blocker := flag.Bool("blocker", false, "park a metal-loaded box at (0, 1) to shadow the zone")
	explain := flag.String("explain", "", "print the itemized link budget at \"x,y\" instead of the map")
	linkbatch := flag.String("linkbatch", "on", "batched grid link resolution: on|off (bit-identical either way)")
	flag.Parse()

	cal := rf.DefaultCalibration()
	w := world.New(cal, 1)
	w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, *height), geom.UnitY, geom.UnitZ))
	if *antennas >= 2 {
		w.AddAntenna("a2", geom.NewPose(geom.V(0, *depth, *height), geom.UnitY.Scale(-1), geom.UnitZ))
	}
	if *blocker {
		w.AddBox("blocker",
			geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, *height), geom.UnitX, geom.UnitZ)},
			geom.V(0.6, 0.6, 0.6), rf.Cardboard, rf.Metal, geom.V(0.5, 0.5, 0.5))
	}
	// The probe: a mount the heat map drags around.
	probeBox := w.AddBox("probe-mount",
		geom.StaticPath{Pose: geom.NewPose(geom.V(0, 0, *height), geom.UnitX, geom.UnitZ)},
		geom.Vec3{}, rf.Cardboard, rf.Air, geom.Vec3{})
	code, err := epc.GID96{Manager: 1, Class: 1, Serial: 1}.Encode()
	if err != nil {
		log.Fatal(err)
	}
	probe := w.AttachTag(probeBox, "probe", code, world.Mount{
		Normal: geom.V(0, -1, 0),
		Axis:   geom.UnitZ,
		Axis2:  geom.UnitX, // orientation-insensitive probe
		Gap:    0.1,
	})

	switch *linkbatch {
	case "on":
	case "off":
		w.SetLinkBatch(false)
	default:
		log.Fatalf("rfmap: -linkbatch must be on or off, got %q", *linkbatch)
	}

	// margin computes the mean forward margin (dB over sensitivity) at a
	// position, best over antennas, with randomness suppressed by
	// averaging passes. The batched path resolves every antenna's link in
	// one grid call per pass; the per-antenna sums accumulate in the same
	// ascending-pass order as the per-link loop, so both paths render the
	// identical map.
	var grid world.LinkGrid
	sums := make([]float64, len(w.Antennas()))
	margin := func(x, y float64) float64 {
		// Through the mutator: the probe drag must invalidate the world's
		// budget-terms cache at every new position.
		w.SetBoxPath(probeBox, geom.StaticPath{Pose: geom.NewPose(geom.V(x, y, *height), geom.UnitX, geom.UnitZ)})
		const passes = 8
		best := -1e9
		if w.LinkBatchEnabled() {
			clear(sums)
			for p := 0; p < passes; p++ {
				w.ResolveLinkGrid(w.Antennas(), world.LinkContext{Pass: p}, &grid)
				for i, ant := range w.Antennas() {
					l := grid.Link(ant, probe)
					sums[i] += float64(l.TagPower - cal.ChipSensitivityDBm)
				}
			}
			for _, sum := range sums {
				if m := sum / 8; m > best {
					best = m
				}
			}
			return best
		}
		for _, ant := range w.Antennas() {
			var sum float64
			for p := 0; p < passes; p++ {
				l := w.ResolveLink(probe, ant, world.LinkContext{Pass: p})
				sum += float64(l.TagPower - cal.ChipSensitivityDBm)
			}
			if m := sum / 8; m > best {
				best = m
			}
		}
		return best
	}

	if *explain != "" {
		x, y, err := parseXY(*explain)
		if err != nil {
			log.Fatalf("rfmap: %v", err)
		}
		w.SetBoxPath(probeBox, geom.StaticPath{Pose: geom.NewPose(geom.V(x, y, *height), geom.UnitX, geom.UnitZ)})
		l := w.ResolveLink(probe, w.Antennas()[0], world.LinkContext{Pass: 0, Explain: true})
		fmt.Printf("link budget at (%.2f, %.2f, %.2f) toward a1:\n%s\n", x, y, *height, l.Forward)
		fmt.Printf("margin over sensitivity: %.1f dB\n", float64(l.TagPower-cal.ChipSensitivityDBm))
		return
	}

	fmt.Printf("forward-link margin at z=%.1f m  ('#' >10 dB, '+' >3, '.' >0, ' ' dead; A = antenna)\n\n", *height)
	fmt.Print(renderMap(w, margin, *span, *depth, 64, 24))
}

// renderMap draws the margin field as rows of glyphs, top (max y) first.
func renderMap(w *world.World, margin func(x, y float64) float64, span, depth float64, cols, rows int) string {
	var out strings.Builder
	for r := 0; r < rows; r++ {
		y := depth * (1 - float64(r)/float64(rows-1))
		var sb strings.Builder
		for c := 0; c < cols; c++ {
			x := span * (float64(c)/float64(cols-1) - 0.5)
			if isAntenna(w, x, y) {
				sb.WriteByte('A')
				continue
			}
			switch m := margin(x, y); {
			case m > 10:
				sb.WriteByte('#')
			case m > 3:
				sb.WriteByte('+')
			case m > 0:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		fmt.Fprintf(&out, "y=%4.1f |%s|\n", y, sb.String())
	}
	fmt.Fprintf(&out, "        %s\n", xAxis(span, cols))
	return out.String()
}

func isAntenna(w *world.World, x, y float64) bool {
	for _, a := range w.Antennas() {
		if a.Pose.Pos.Dist(geom.V(x, y, a.Pose.Pos.Z)) < 0.15 {
			return true
		}
	}
	return false
}

func parseXY(s string) (x, y float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want \"x,y\", got %q", s)
	}
	if x, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, err
	}
	if y, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, err
	}
	return x, y, nil
}

func xAxis(span float64, cols int) string {
	left := fmt.Sprintf("x=%.1f", -span/2)
	right := fmt.Sprintf("%.1f", span/2)
	pad := cols - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	return left + strings.Repeat(" ", pad) + right
}
