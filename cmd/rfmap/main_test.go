package main

import (
	"strings"
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

func TestParseXY(t *testing.T) {
	x, y, err := parseXY("1.5, -2")
	if err != nil || x != 1.5 || y != -2 {
		t.Errorf("parseXY = %v, %v, %v", x, y, err)
	}
	for _, bad := range []string{"", "1", "1,2,3", "a,2", "1,b"} {
		if _, _, err := parseXY(bad); err == nil {
			t.Errorf("parseXY(%q) accepted", bad)
		}
	}
}

func TestXAxis(t *testing.T) {
	s := xAxis(8, 64)
	if !strings.HasPrefix(s, "x=-4.0") || !strings.HasSuffix(s, "4.0") {
		t.Errorf("axis = %q", s)
	}
	// Degenerate width must not panic or go negative.
	if s := xAxis(8, 2); s == "" {
		t.Error("empty axis")
	}
}

func TestRenderMap(t *testing.T) {
	w := world.New(rf.DefaultCalibration(), 1)
	w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	// A synthetic margin field: strong near the antenna, dead far away.
	margin := func(x, y float64) float64 { return 15 - 6*(x*x+y*y) }
	out := renderMap(w, margin, 4, 3, 16, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // 8 rows + axis
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "A") {
		t.Errorf("map missing strong cells or antenna marker:\n%s", out)
	}
	// The far corners are dead (blank).
	if !strings.Contains(lines[0], " ") {
		t.Errorf("top row has no dead cells:\n%s", out)
	}
}
