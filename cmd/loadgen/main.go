// Command loadgen is the fleet-scale capacity probe: it replays synthetic
// portal traffic — event streams templated from a real simulated cart
// pass (internal/scenario's object-tracking experiment) and cloned across
// N portals with distinct EPC populations — straight into the sharded
// ingestion pipeline at a configurable rate, and reports what the box
// actually sustained: achieved events/sec, exact p50/p95/p99 per-batch
// ingest latency, and allocation rates on the steady-state path.
//
// Usage:
//
//	loadgen [-portals 64] [-rate 0] [-duration 5s] [-batch 256]
//	        [-shards 8] [-store-shards 32] [-workers 1] [-window 2.0]
//	        [-seed 1] [-json]
//
// -rate 0 runs unthrottled (capacity mode). Each worker owns a disjoint
// set of portals, so per-EPC event order is preserved no matter how many
// workers replay concurrently (DESIGN.md §11).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/scenario"
)

// Config parameterizes one load run.
type Config struct {
	Portals     int
	Rate        float64 // target events/sec across all portals; 0 = unthrottled
	Duration    time.Duration
	BatchSize   int
	Shards      int
	StoreShards int
	Workers     int
	Window      float64
	Seed        uint64
}

// Report is the run summary (the -json document).
type Report struct {
	Portals        int     `json:"portals"`
	Shards         int     `json:"shards"`
	StoreShards    int     `json:"store_shards"`
	Workers        int     `json:"workers"`
	BatchSize      int     `json:"batch_size"`
	TemplateReads  int     `json:"template_reads"` // events in one portal's template pass
	Events         uint64  `json:"events"`
	Batches        uint64  `json:"batches"`
	Closed         uint64  `json:"closed_sightings"`
	Tags           int     `json:"tags"`
	Seconds        float64 `json:"seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	P50Micros      float64 `json:"p50_micros"`
	P95Micros      float64 `json:"p95_micros"`
	P99Micros      float64 `json:"p99_micros"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// template simulates one cart pass and returns it as a time-ordered
// backend event stream — the per-portal traffic unit loadgen replays.
func template(window float64, seed uint64) ([]backend.Event, float64, error) {
	portal, err := scenario.ObjectTracking(scenario.ObjectConfig{
		TagLocations: []scenario.BoxLocation{scenario.LocFront, scenario.LocTop},
		Antennas:     2,
		Seed:         seed,
	})
	if err != nil {
		return nil, 0, err
	}
	res := portal.RunPass(0)
	evs := make([]backend.Event, 0, len(res.Events))
	last := 0.0
	for _, ev := range res.Events {
		evs = append(evs, backend.Event{
			EPC:      ev.EPC,
			Location: ev.Reader,
			Antenna:  ev.Antenna,
			Time:     ev.Time,
		})
		if ev.Time > last {
			last = ev.Time
		}
	}
	if len(evs) == 0 {
		return nil, 0, fmt.Errorf("loadgen: template pass produced no reads")
	}
	// Epoch span: replaying the template shifted by this keeps every
	// stream time-ordered and lets each epoch's sightings close.
	span := last + 2*window + 1
	return evs, span, nil
}

// portalStream is one portal's replay state: the template with the portal
// identity folded into every EPC, plus the replay cursor.
type portalStream struct {
	events []backend.Event
	pos    int
	epoch  uint64
	span   float64
}

func newPortalStream(tpl []backend.Event, span float64, portal int) *portalStream {
	evs := make([]backend.Event, len(tpl))
	copy(evs, tpl)
	loc := fmt.Sprintf("portal%04d", portal)
	for i := range evs {
		// Distinct EPC population per portal: fold the portal id into the
		// serial bytes. Keeps streams disjoint without re-encoding SGTINs.
		evs[i].EPC[8] ^= byte(portal >> 8)
		evs[i].EPC[9] ^= byte(portal)
		evs[i].Location = loc
	}
	return &portalStream{events: evs, span: span}
}

// fill appends up to n events to dst, wrapping to the next epoch (times
// shifted forward) when the template is exhausted. Allocation-free.
func (p *portalStream) fill(dst []backend.Event, n int) []backend.Event {
	shift := float64(p.epoch) * p.span
	for n > 0 {
		if p.pos == len(p.events) {
			p.pos = 0
			p.epoch++
			shift = float64(p.epoch) * p.span
		}
		ev := p.events[p.pos]
		ev.Time += shift
		dst = append(dst, ev)
		p.pos++
		n--
	}
	return dst
}

// worker replays a disjoint set of portals into the pipeline until stop,
// throttled to its share of the target rate.
type worker struct {
	pipe    *backend.Pipeline
	streams []*portalStream
	batch   []backend.Event
	rate    float64 // events/sec for this worker; 0 = unthrottled

	events  uint64
	batches uint64
	closed  uint64
	latency []float64 // per-batch ingest micros
}

func (w *worker) run(deadline time.Time) {
	start := time.Now()
	next := 0
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		if w.rate > 0 {
			// Pace by absolute schedule: the batch may start once the
			// target rate would have produced its events.
			due := start.Add(time.Duration(float64(w.events) / w.rate * float64(time.Second)))
			if wait := due.Sub(now); wait > 0 {
				if due.After(deadline) {
					return
				}
				time.Sleep(wait)
			}
		}
		w.batch = w.batch[:0]
		// Round-robin portals, one batch per portal per turn: preserves
		// each portal's (hence each EPC's) event order.
		st := w.streams[next]
		next = (next + 1) % len(w.streams)
		w.batch = st.fill(w.batch, cap(w.batch))

		t0 := time.Now()
		closed := w.pipe.IngestBatch(w.batch)
		el := time.Since(t0)

		w.events += uint64(len(w.batch))
		w.batches++
		w.closed += uint64(closed)
		if len(w.latency) < cap(w.latency) {
			w.latency = append(w.latency, float64(el.Nanoseconds())/1e3)
		}
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// run executes one load run and returns the report.
func run(cfg Config) (Report, error) {
	if cfg.Portals <= 0 {
		cfg.Portals = 64
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Workers > cfg.Portals {
		cfg.Workers = cfg.Portals
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 2.0
	}

	tpl, span, err := template(cfg.Window, cfg.Seed)
	if err != nil {
		return Report{}, err
	}
	pipe := backend.NewShardedPipeline(backend.Config{
		Shards:      cfg.Shards,
		NewSmoother: func() backend.Smoother { return backend.NewWindowSmoother(cfg.Window) },
		StoreShards: cfg.StoreShards,
	})

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = &worker{
			pipe:    pipe,
			batch:   make([]backend.Event, 0, cfg.BatchSize),
			rate:    cfg.Rate / float64(cfg.Workers),
			latency: make([]float64, 0, 1<<19),
		}
	}
	for p := 0; p < cfg.Portals; p++ {
		w := workers[p%cfg.Workers] // disjoint portal ownership
		w.streams = append(w.streams, newPortalStream(tpl, span, p))
	}

	// Warm the pools and shard maps before measuring.
	for _, w := range workers {
		w.run(time.Now().Add(50 * time.Millisecond))
		w.events, w.batches, w.closed = 0, 0, 0
		w.latency = w.latency[:0]
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(deadline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	rep := Report{
		Portals:       cfg.Portals,
		Shards:        pipe.Shards(),
		StoreShards:   pipe.Store().NumShards(),
		Workers:       cfg.Workers,
		BatchSize:     cfg.BatchSize,
		TemplateReads: len(tpl),
		Seconds:       elapsed,
	}
	var lat []float64
	for _, w := range workers {
		rep.Events += w.events
		rep.Batches += w.batches
		rep.Closed += w.closed
		lat = append(lat, w.latency...)
	}
	sort.Float64s(lat)
	rep.EventsPerSec = float64(rep.Events) / elapsed
	rep.P50Micros = percentile(lat, 0.50)
	rep.P95Micros = percentile(lat, 0.95)
	rep.P99Micros = percentile(lat, 0.99)
	if rep.Events > 0 {
		rep.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.Events)
		rep.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(rep.Events)
	}
	pipe.Flush(float64(rep.Events)) // beyond any event time: close everything
	rep.Tags = len(pipe.Store().Tags())
	return rep, nil
}

func main() {
	portals := flag.Int("portals", 64, "portals to clone the template pass across")
	rate := flag.Float64("rate", 0, "target events/sec across all portals (0 = unthrottled)")
	duration := flag.Duration("duration", 5*time.Second, "measured replay duration")
	batch := flag.Int("batch", 256, "events per ingested batch")
	shards := flag.Int("shards", 8, "pipeline smoother shards")
	storeShards := flag.Int("store-shards", backend.DefaultStoreShards, "tracking-store shards")
	workers := flag.Int("workers", 1, "replay goroutines (each owns disjoint portals)")
	window := flag.Float64("window", 2.0, "smoothing window, seconds")
	seed := flag.Uint64("seed", 1, "template pass seed")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	rep, err := run(Config{
		Portals:     *portals,
		Rate:        *rate,
		Duration:    *duration,
		BatchSize:   *batch,
		Shards:      *shards,
		StoreShards: *storeShards,
		Workers:     *workers,
		Window:      *window,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		return
	}
	fmt.Printf("loadgen: %d portals x %d-event template, %d shard(s), %d worker(s), batch %d\n",
		rep.Portals, rep.TemplateReads, rep.Shards, rep.Workers, rep.BatchSize)
	fmt.Printf("  events     %12d in %.2fs  (%.0f events/sec)\n", rep.Events, rep.Seconds, rep.EventsPerSec)
	fmt.Printf("  batches    %12d  closed sightings %d, tags %d\n", rep.Batches, rep.Closed, rep.Tags)
	fmt.Printf("  ingest lat p50 %.1fus  p95 %.1fus  p99 %.1fus\n", rep.P50Micros, rep.P95Micros, rep.P99Micros)
	fmt.Printf("  allocs     %.2f B/event, %.4f allocs/event\n", rep.BytesPerEvent, rep.AllocsPerEvent)
}
