package main

import (
	"testing"
	"time"
)

func TestRunSmoke(t *testing.T) {
	rep, err := run(Config{
		Portals:   4,
		Duration:  200 * time.Millisecond,
		BatchSize: 64,
		Shards:    2,
		Workers:   2,
		Window:    2,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Events == 0 || rep.Batches == 0 {
		t.Fatalf("no traffic replayed: %+v", rep)
	}
	if rep.EventsPerSec <= 0 {
		t.Fatalf("events_per_sec = %v", rep.EventsPerSec)
	}
	if rep.P99Micros < rep.P50Micros {
		t.Fatalf("p99 %.1f < p50 %.1f", rep.P99Micros, rep.P50Micros)
	}
	// Each portal clones the template with a distinct EPC population, so
	// the store must hold portals x template-tags distinct tags.
	if rep.Tags%rep.Portals != 0 {
		t.Errorf("tags %d not a multiple of portals %d", rep.Tags, rep.Portals)
	}
	if rep.Tags == 0 {
		t.Errorf("no tags tracked")
	}
}

func TestRunThrottled(t *testing.T) {
	rep, err := run(Config{
		Portals:   2,
		Rate:      50000,
		Duration:  300 * time.Millisecond,
		BatchSize: 100,
		Shards:    1,
		Window:    2,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The pacer may not hit the target exactly in 300ms, but it must not
	// blow far past it: unthrottled this box does >1M events/sec.
	if rep.EventsPerSec > 100000 {
		t.Fatalf("rate limiter ineffective: %.0f events/sec at a 50k target", rep.EventsPerSec)
	}
	if rep.Events == 0 {
		t.Fatalf("throttled run replayed nothing")
	}
}

func TestPortalStreamsDisjoint(t *testing.T) {
	tpl, span, err := template(2, 1)
	if err != nil {
		t.Fatalf("template: %v", err)
	}
	a := newPortalStream(tpl, span, 1)
	b := newPortalStream(tpl, span, 2)
	seen := map[[12]byte]bool{}
	for _, ev := range a.events {
		seen[ev.EPC] = true
	}
	for _, ev := range b.events {
		if seen[ev.EPC] {
			t.Fatalf("EPC %s appears in both portals", ev.EPC.Hex())
		}
	}
	// Epoch wrap must keep times strictly advancing.
	batch := a.fill(nil, len(a.events)+3)
	for i := 1; i < len(batch); i++ {
		if batch[i].Time < batch[i-1].Time && batch[i].EPC == batch[i-1].EPC && batch[i].Location == batch[i-1].Location {
			t.Fatalf("time went backwards for a key at %d", i)
		}
	}
}
