// Command benchsnap converts `go test -bench` output into a JSON snapshot
// so benchmark runs can be diffed across commits by machines, not eyes.
//
// It reads the benchmark stream on stdin (echoing it through to stdout so
// the run stays visible), parses every benchmark result line — standard
// ns/op, -benchmem's B/op and allocs/op, and any custom b.ReportMetric
// units such as reads/pass — and writes one JSON document:
//
//	go test -bench=. -benchmem ./... | benchsnap -o BENCH_1.json
//
// Compare mode diffs two snapshots instead of reading stdin, printing the
// ns/op and allocs/op movement of every benchmark present in both files
// and exiting 1 when any ns/op regression exceeds -threshold, a
// benchmark that allocated nothing starts allocating, or a benchmark
// reporting a culled% metric (the grid scaling benches) loses more than
// the threshold's share of its culled fraction:
//
//	benchsnap -old BENCH_1.json -new BENCH_new.json -threshold 0.10
//
// Result lines look like
//
//	BenchmarkResolveLink-8   121   9876 ns/op   120 B/op   3 allocs/op
//
// where the -8 suffix is GOMAXPROCS. Header lines (goos/goarch/pkg/cpu)
// scope the results that follow them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the GOMAXPROCS suffix
	// (BenchmarkResolveLink, BenchmarkMeasureParallel/workers=2).
	Name string `json:"name"`
	// Package is the import path from the preceding pkg: header, if any.
	Package string `json:"package,omitempty"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op, custom units.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the whole document benchsnap emits.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsnap: ")
	out := flag.String("o", "BENCH_1.json", "output JSON file")
	quiet := flag.Bool("q", false, "do not echo the input stream to stdout")
	oldPath := flag.String("old", "", "compare mode: baseline snapshot JSON")
	newPath := flag.String("new", "", "compare mode: candidate snapshot JSON")
	threshold := flag.Float64("threshold", 0.10, "compare mode: ns/op regression ratio that fails the run")
	flag.Parse()

	if *oldPath != "" || *newPath != "" {
		if *oldPath == "" || *newPath == "" {
			log.Fatal("compare mode needs both -old and -new")
		}
		a, err := readSnapshot(*oldPath)
		if os.IsNotExist(err) {
			// A brand-new checkout has no committed baseline yet; that is
			// not a regression, so say what to do and succeed.
			log.Printf("no baseline snapshot at %s; skipping comparison (run `make bench` to create one)", *oldPath)
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		b, err := readSnapshot(*newPath)
		if err != nil {
			log.Fatal(err)
		}
		report, regressed := compareSnapshots(a, b, *threshold)
		fmt.Print(report)
		if regressed {
			log.Fatalf("regression above %.0f%% threshold", 100**threshold)
		}
		return
	}

	echo := io.Writer(os.Stdout)
	if *quiet {
		echo = io.Discard
	}
	snap, err := parse(os.Stdin, echo)
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines on stdin (pipe `go test -bench` output in)")
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(snap.Benchmarks))
}

// parse scans the benchmark stream, echoing every line to echo.
func parse(r io.Reader, echo io.Writer) (*Snapshot, error) {
	snap := &Snapshot{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseResult(line); ok {
				b.Package = pkg
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	return snap, sc.Err()
}

// parseResult parses one result line: name, iteration count, then
// value-unit pairs. Non-result Benchmark lines (e.g. a bare name printed
// before its timing line under -v) report ok = false.
func parseResult(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       f[0],
		Procs:      1,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(f)-2)/2),
	}
	if i := strings.LastIndexByte(b.Name, '-'); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// readSnapshot loads a snapshot written by a previous benchsnap run.
func readSnapshot(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// benchKey identifies a benchmark across snapshots.
func benchKey(b Benchmark) string { return b.Package + "\x00" + b.Name }

// compareSnapshots reports the ns/op and allocs/op movement of every
// benchmark present in both snapshots. regressed is true when a common
// benchmark slowed down by more than threshold (a ratio: 0.10 = 10%) or
// went from zero to nonzero allocs/op — the disabled-instrumentation
// guard the repo's bench-diff target relies on.
func compareSnapshots(a, b *Snapshot, threshold float64) (report string, regressed bool) {
	old := make(map[string]Benchmark, len(a.Benchmarks))
	for _, bm := range a.Benchmarks {
		old[benchKey(bm)] = bm
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	matched := 0
	for _, nb := range b.Benchmarks {
		ob, ok := old[benchKey(nb)]
		if !ok {
			fmt.Fprintf(&sb, "%-44s %14s %14.1f %8s  (new benchmark)\n", nb.Name, "-", nb.Metrics["ns/op"], "-")
			continue
		}
		matched++
		oldNS, newNS := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
		delta := 0.0
		if oldNS > 0 {
			delta = (newNS - oldNS) / oldNS
		}
		oldAllocs, newAllocs := ob.Metrics["allocs/op"], nb.Metrics["allocs/op"]
		notes := fmt.Sprintf("%g -> %g", oldAllocs, newAllocs)
		bad := false
		if delta > threshold {
			bad = true
			notes += "  SLOWER"
		}
		if oldAllocs == 0 && newAllocs > 0 {
			bad = true
			notes += "  NOW ALLOCATES"
		}
		// Cull-effectiveness guard: a benchmark reporting a culled% metric
		// (the scale benches) must not lose more than the threshold's share
		// of its culled fraction — a shrinking fraction means the broad-phase
		// bound got looser and dense work is sneaking back in.
		if oldCull, ok := ob.Metrics["culled%"]; ok && oldCull > 0 {
			newCull := nb.Metrics["culled%"]
			notes += fmt.Sprintf("  culled %.1f%% -> %.1f%%", oldCull, newCull)
			if (oldCull-newCull)/oldCull > threshold {
				bad = true
				notes += "  LESS CULLING"
			}
		}
		if bad {
			regressed = true
		}
		fmt.Fprintf(&sb, "%-44s %14.1f %14.1f %+7.1f%%  %s\n", nb.Name, oldNS, newNS, 100*delta, notes)
	}
	for _, ob := range a.Benchmarks {
		found := false
		for _, nb := range b.Benchmarks {
			if benchKey(nb) == benchKey(ob) {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(&sb, "%-44s %14.1f %14s %8s  (removed)\n", ob.Name, ob.Metrics["ns/op"], "-", "-")
		}
	}
	fmt.Fprintf(&sb, "%d benchmarks compared\n", matched)
	return sb.String(), regressed
}
