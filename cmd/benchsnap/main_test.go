package main

import (
	"io"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: rfidtrack
cpu: Intel(R) Xeon(R) CPU
BenchmarkResolveLink-8   	  121212	      9876 ns/op	     120 B/op	       3 allocs/op
BenchmarkPortalPass-8    	     500	   2345678 ns/op	        41.50 reads/pass
BenchmarkMeasureParallel/workers=2-8         	      10	 111222333 ns/op
BenchmarkCRC16           	 5000000	       250 ns/op
PASS
ok  	rfidtrack	12.345s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleStream), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("headers not captured: %+v", snap)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	rl := snap.Benchmarks[0]
	if rl.Name != "BenchmarkResolveLink" || rl.Procs != 8 || rl.Package != "rfidtrack" {
		t.Errorf("ResolveLink parsed as %+v", rl)
	}
	if rl.Iterations != 121212 || rl.Metrics["ns/op"] != 9876 ||
		rl.Metrics["B/op"] != 120 || rl.Metrics["allocs/op"] != 3 {
		t.Errorf("ResolveLink metrics wrong: %+v", rl)
	}
	if m := snap.Benchmarks[1].Metrics["reads/pass"]; m != 41.50 {
		t.Errorf("custom metric reads/pass = %v, want 41.5", m)
	}
	sub := snap.Benchmarks[2]
	if sub.Name != "BenchmarkMeasureParallel/workers=2" || sub.Procs != 8 {
		t.Errorf("sub-benchmark parsed as %+v", sub)
	}
	// No GOMAXPROCS suffix → procs defaults to 1 and the name is intact.
	if b := snap.Benchmarks[3]; b.Name != "BenchmarkCRC16" || b.Procs != 1 {
		t.Errorf("suffixless benchmark parsed as %+v", b)
	}
}

func TestParseResultRejectsNonResultLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkResolveLink",               // -v name-only line
		"BenchmarkResolveLink-8   oops 1 ns", // non-numeric iterations
		"Benchmark short",                    // too few fields
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("parseResult accepted %q", line)
		}
	}
}
