package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: rfidtrack
cpu: Intel(R) Xeon(R) CPU
BenchmarkResolveLink-8   	  121212	      9876 ns/op	     120 B/op	       3 allocs/op
BenchmarkPortalPass-8    	     500	   2345678 ns/op	        41.50 reads/pass
BenchmarkMeasureParallel/workers=2-8         	      10	 111222333 ns/op
BenchmarkCRC16           	 5000000	       250 ns/op
PASS
ok  	rfidtrack	12.345s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleStream), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("headers not captured: %+v", snap)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	rl := snap.Benchmarks[0]
	if rl.Name != "BenchmarkResolveLink" || rl.Procs != 8 || rl.Package != "rfidtrack" {
		t.Errorf("ResolveLink parsed as %+v", rl)
	}
	if rl.Iterations != 121212 || rl.Metrics["ns/op"] != 9876 ||
		rl.Metrics["B/op"] != 120 || rl.Metrics["allocs/op"] != 3 {
		t.Errorf("ResolveLink metrics wrong: %+v", rl)
	}
	if m := snap.Benchmarks[1].Metrics["reads/pass"]; m != 41.50 {
		t.Errorf("custom metric reads/pass = %v, want 41.5", m)
	}
	sub := snap.Benchmarks[2]
	if sub.Name != "BenchmarkMeasureParallel/workers=2" || sub.Procs != 8 {
		t.Errorf("sub-benchmark parsed as %+v", sub)
	}
	// No GOMAXPROCS suffix → procs defaults to 1 and the name is intact.
	if b := snap.Benchmarks[3]; b.Name != "BenchmarkCRC16" || b.Procs != 1 {
		t.Errorf("suffixless benchmark parsed as %+v", b)
	}
}

// snapWith builds a one-package snapshot from name → (ns/op, allocs/op).
func snapWith(metrics map[string][2]float64) *Snapshot {
	s := &Snapshot{}
	for name, m := range metrics {
		s.Benchmarks = append(s.Benchmarks, Benchmark{
			Name:    name,
			Package: "rfidtrack",
			Procs:   8,
			Metrics: map[string]float64{"ns/op": m[0], "allocs/op": m[1]},
		})
	}
	return s
}

func TestCompareSnapshotsWithinThreshold(t *testing.T) {
	a := snapWith(map[string][2]float64{"BenchmarkResolveLink": {1000, 0}})
	b := snapWith(map[string][2]float64{"BenchmarkResolveLink": {1050, 0}})
	report, regressed := compareSnapshots(a, b, 0.10)
	if regressed {
		t.Errorf("5%% slowdown flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "+5.0%") {
		t.Errorf("delta not reported:\n%s", report)
	}
	if !strings.Contains(report, "1 benchmarks compared") {
		t.Errorf("match count missing:\n%s", report)
	}
}

func TestCompareSnapshotsSlowdownRegresses(t *testing.T) {
	a := snapWith(map[string][2]float64{"BenchmarkResolveLink": {1000, 0}})
	b := snapWith(map[string][2]float64{"BenchmarkResolveLink": {1200, 0}})
	report, regressed := compareSnapshots(a, b, 0.10)
	if !regressed {
		t.Errorf("20%% slowdown not flagged:\n%s", report)
	}
	if !strings.Contains(report, "SLOWER") {
		t.Errorf("SLOWER marker missing:\n%s", report)
	}
}

func TestCompareSnapshotsNewAllocationsRegress(t *testing.T) {
	// Speed within threshold, but a previously allocation-free benchmark
	// now allocates — the guard the zero-cost contract depends on.
	a := snapWith(map[string][2]float64{"BenchmarkResolveLink": {1000, 0}})
	b := snapWith(map[string][2]float64{"BenchmarkResolveLink": {1000, 2}})
	report, regressed := compareSnapshots(a, b, 0.10)
	if !regressed {
		t.Errorf("0 -> 2 allocs/op not flagged:\n%s", report)
	}
	if !strings.Contains(report, "NOW ALLOCATES") {
		t.Errorf("NOW ALLOCATES marker missing:\n%s", report)
	}
}

// snapCulled builds a one-benchmark snapshot that also reports a culled%
// custom metric, the shape the grid scaling benches emit.
func snapCulled(ns, culled float64) *Snapshot {
	return &Snapshot{Benchmarks: []Benchmark{{
		Name:    "BenchmarkResolveLinkGridScale/aisle-10k",
		Package: "rfidtrack",
		Procs:   8,
		Metrics: map[string]float64{"ns/op": ns, "allocs/op": 0, "culled%": culled},
	}}}
}

func TestCompareSnapshotsCulledFractionRegresses(t *testing.T) {
	// Speed and allocations fine, but the culler now skips 70% where it
	// skipped 92% — the bound got looser, dense work is sneaking back.
	a := snapCulled(1000, 92)
	b := snapCulled(1000, 70)
	report, regressed := compareSnapshots(a, b, 0.10)
	if !regressed {
		t.Errorf("92%% -> 70%% culled fraction not flagged:\n%s", report)
	}
	if !strings.Contains(report, "LESS CULLING") {
		t.Errorf("LESS CULLING marker missing:\n%s", report)
	}
}

func TestCompareSnapshotsCulledFractionWithinThreshold(t *testing.T) {
	a := snapCulled(1000, 92)
	b := snapCulled(1000, 90)
	report, regressed := compareSnapshots(a, b, 0.10)
	if regressed {
		t.Errorf("92%% -> 90%% culled fraction flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "culled 92.0% -> 90.0%") {
		t.Errorf("culled fractions not reported:\n%s", report)
	}
}

func TestCompareSnapshotsUnmatchedBenchmarks(t *testing.T) {
	a := snapWith(map[string][2]float64{"BenchmarkOld": {500, 0}})
	b := snapWith(map[string][2]float64{"BenchmarkNew": {700, 1}})
	report, regressed := compareSnapshots(a, b, 0.10)
	if regressed {
		t.Errorf("disjoint snapshots flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "(new benchmark)") || !strings.Contains(report, "(removed)") {
		t.Errorf("unmatched benchmarks not annotated:\n%s", report)
	}
	if !strings.Contains(report, "0 benchmarks compared") {
		t.Errorf("match count wrong:\n%s", report)
	}
}

func TestCompareSnapshotsMatchesByPackage(t *testing.T) {
	// Same name in a different package must not match.
	a := snapWith(map[string][2]float64{"BenchmarkResolveLink": {1000, 0}})
	b := snapWith(map[string][2]float64{"BenchmarkResolveLink": {5000, 0}})
	b.Benchmarks[0].Package = "rfidtrack/other"
	report, regressed := compareSnapshots(a, b, 0.10)
	if regressed {
		t.Errorf("cross-package comparison happened:\n%s", report)
	}
	if !strings.Contains(report, "(new benchmark)") {
		t.Errorf("package mismatch not treated as unmatched:\n%s", report)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := readSnapshot("/nonexistent/bench.json"); err == nil {
		t.Error("missing file accepted")
	}
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestParseResultRejectsNonResultLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkResolveLink",               // -v name-only line
		"BenchmarkResolveLink-8   oops 1 ns", // non-numeric iterations
		"Benchmark short",                    // too few fields
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("parseResult accepted %q", line)
		}
	}
}
