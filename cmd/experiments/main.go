// Command experiments regenerates every table and figure of the paper and
// writes the paper-vs-measured record as a markdown document (the source
// of EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-seed N] [-trials N] [-workers N] [-o EXPERIMENTS.md]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"rfidtrack/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "random seed")
	trials := flag.Int("trials", 0, "override per-experiment trial counts (0 = paper defaults)")
	workers := flag.Int("workers", 0, "measurement worker pool size (0 = GOMAXPROCS); results are identical for any value")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	opt := experiments.Options{Seed: *seed, Trials: *trials, Workers: *workers}
	start := time.Now()
	results, err := experiments.RunAll(opt)
	if err != nil {
		log.Fatalf("experiments: %v", err)
	}

	var sb strings.Builder
	sb.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	sb.WriteString("Reproduction record for *Reliability Techniques for RFID-Based Object\n")
	sb.WriteString("Tracking Applications* (DSN 2007). Regenerate with:\n\n")
	fmt.Fprintf(&sb, "```\ngo run ./cmd/experiments -seed %d -o EXPERIMENTS.md\n```\n\n", *seed)
	sb.WriteString("`paper` columns are the values printed in the paper; `measured` columns\n")
	sb.WriteString("come from this simulator (substitute for the paper's physical testbed —\n")
	sb.WriteString("see DESIGN.md §2). Absolute agreement is not the goal; the *shape*\n")
	sb.WriteString("(orderings, collapses, crossovers, redundancy gains) is, and each\n")
	sb.WriteString("experiment's note records whether it reproduced.\n\n")
	for _, res := range results {
		fmt.Fprintf(&sb, "## %s — %s\n\n", res.ID, res.Title)
		for _, t := range res.Tables {
			sb.WriteString(t.Markdown())
			sb.WriteString("\n")
		}
		for _, n := range res.Notes {
			fmt.Fprintf(&sb, "> %s\n\n", n)
		}
	}
	fmt.Fprintf(&sb, "---\nGenerated with seed %d in %s.\n", *seed, time.Since(start).Round(time.Second))

	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		log.Fatalf("experiments: %v", err)
	}
	log.Printf("wrote %s (%d experiments)", *out, len(results))
}
