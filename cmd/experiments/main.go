// Command experiments regenerates every table and figure of the paper and
// writes the paper-vs-measured record as a markdown document (the source
// of EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-seed N] [-trials N] [-workers N] [-parallel-experiments]
//	            [-linkcache on|off] [-linkbatch on|off] [-linkcull on|off] [-o EXPERIMENTS.md]
//	            [-metrics] [-trace FILE] [-trace-links] [-pprof ADDR]
//	            [-session-confidence 0.99]
//
// With -metrics, the engine's instrumentation layer (internal/obs) is
// enabled and a run manifest — config, seed, workers, git revision,
// per-experiment timings, and the full metric snapshot — is written next
// to the output (render or diff it with cmd/obsreport). With -trace, a
// JSONL stream of pass/round events (plus per-link events under
// -trace-links) is written to FILE. With -pprof, net/http/pprof and
// expvar are served on ADDR for live profiling; the expvar variable
// "rfidtrack_metrics" exposes the latest completed metric snapshot.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rfidtrack/internal/experiments"
	"rfidtrack/internal/obs"
)

// lastSnapshot backs the "rfidtrack_metrics" expvar: the main goroutine
// stores each completed snapshot; scrapes never race a live measurement.
var lastSnapshot atomic.Pointer[obs.Snapshot]

func main() {
	seed := flag.Uint64("seed", 1, "random seed")
	trials := flag.Int("trials", 0, "override per-experiment trial counts (0 = paper defaults)")
	workers := flag.Int("workers", 0, "measurement worker pool size (0 = GOMAXPROCS); results are identical for any value")
	parallelExp := flag.Bool("parallel-experiments", false, "run the registered experiments concurrently (bounded by GOMAXPROCS); results print in the usual order")
	linkcache := flag.String("linkcache", "on", "deterministic budget-terms cache: on or off (off recomputes every link budget, for A/B benchmarking; results are bit-identical)")
	linkbatch := flag.String("linkbatch", "on", "batched grid link resolution: on or off (off resolves links one at a time, for A/B benchmarking; results are bit-identical)")
	linkcull := flag.String("linkcull", "on", "broad-phase link culling: on or off (off resolves every pair densely, for A/B benchmarking; results are bit-identical)")
	out := flag.String("o", "", "output file (default stdout)")
	metricsOn := flag.Bool("metrics", false, "collect engine metrics and write a run manifest next to the output")
	manifestPath := flag.String("manifest", "", "manifest path (default: derived from -o when -metrics is set)")
	tracePath := flag.String("trace", "", "write a JSONL pass/round trace to this file")
	traceLinks := flag.Bool("trace-links", false, "include per-(tag, antenna) link events in the trace (large)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	sessionConfidence := flag.Float64("session-confidence", 0, "session-merge stopping confidence in [0,1) (0 = the package default, 0.99)")
	flag.Parse()

	if *pprofAddr != "" {
		expvar.Publish("rfidtrack_metrics", expvar.Func(func() any { return lastSnapshot.Load() }))
		go func() {
			log.Printf("pprof: serving http://%s/debug/pprof/ and /debug/vars", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	opt := experiments.Options{Seed: *seed, Trials: *trials, Workers: *workers, SessionConfidence: *sessionConfidence}
	switch *linkcache {
	case "on":
	case "off":
		opt.DisableLinkCache = true
	default:
		log.Fatalf("experiments: -linkcache wants on or off, got %q", *linkcache)
	}
	switch *linkbatch {
	case "on":
	case "off":
		opt.DisableLinkBatch = true
	default:
		log.Fatalf("experiments: -linkbatch wants on or off, got %q", *linkbatch)
	}
	switch *linkcull {
	case "on":
	case "off":
		opt.DisableLinkCull = true
	default:
		log.Fatalf("experiments: -linkcull wants on or off, got %q", *linkcull)
	}
	if *metricsOn {
		opt.Metrics = obs.NewMetrics()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		var topts []obs.TracerOption
		if *traceLinks {
			topts = append(topts, obs.TraceLinks())
		}
		tracer := obs.NewTracer(f, topts...)
		opt.Tracer = tracer
		defer func() {
			if err := tracer.Close(); err != nil {
				log.Printf("experiments: trace: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("experiments: trace: %v", err)
			}
			if n := tracer.Dropped(); n > 0 {
				log.Printf("experiments: trace truncated, %d events dropped", n)
			}
		}()
	}
	if err := opt.Validate(); err != nil {
		log.Fatalf("experiments: %v", err)
	}

	start := time.Now()
	ids := experiments.IDs()
	results := make([]*experiments.Result, len(ids))
	seconds := make([]float64, len(ids))
	if *parallelExp {
		// Experiments are independent, so the harness fans them out across
		// GOMAXPROCS slots; results land in their id slot so the record
		// prints in the usual order no matter what finished first.
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		errs := make([]error, len(ids))
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				t0 := time.Now()
				results[i], errs[i] = experiments.Run(id, opt)
				seconds[i] = time.Since(t0).Seconds()
			}(i, id)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				log.Fatalf("experiments: %s: %v", ids[i], err)
			}
		}
	} else {
		for i, id := range ids {
			t0 := time.Now()
			res, err := experiments.Run(id, opt)
			if err != nil {
				log.Fatalf("experiments: %s: %v", id, err)
			}
			seconds[i] = time.Since(t0).Seconds()
			results[i] = res
		}
	}
	timings := make(map[string]float64, len(ids))
	for i, id := range ids {
		timings[id] = seconds[i]
	}

	var sb strings.Builder
	sb.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	sb.WriteString("Reproduction record for *Reliability Techniques for RFID-Based Object\n")
	sb.WriteString("Tracking Applications* (DSN 2007). Regenerate with:\n\n")
	fmt.Fprintf(&sb, "```\ngo run ./cmd/experiments -seed %d -o EXPERIMENTS.md\n```\n\n", *seed)
	sb.WriteString("`paper` columns are the values printed in the paper; `measured` columns\n")
	sb.WriteString("come from this simulator (substitute for the paper's physical testbed —\n")
	sb.WriteString("see DESIGN.md §2). Absolute agreement is not the goal; the *shape*\n")
	sb.WriteString("(orderings, collapses, crossovers, redundancy gains) is, and each\n")
	sb.WriteString("experiment's note records whether it reproduced.\n\n")
	for _, res := range results {
		fmt.Fprintf(&sb, "## %s — %s\n\n", res.ID, res.Title)
		for _, t := range res.Tables {
			sb.WriteString(t.Markdown())
			sb.WriteString("\n")
		}
		for _, n := range res.Notes {
			fmt.Fprintf(&sb, "> %s\n\n", n)
		}
	}
	fmt.Fprintf(&sb, "---\nGenerated with seed %d in %s.\n", *seed, time.Since(start).Round(time.Second))

	if *out == "" {
		fmt.Print(sb.String())
	} else {
		if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
			log.Fatalf("experiments: %v", err)
		}
		log.Printf("wrote %s (%d experiments)", *out, len(results))
	}

	if opt.Metrics != nil {
		snap := opt.Metrics.Snapshot()
		lastSnapshot.Store(&snap)
		path := *manifestPath
		if path == "" {
			path = manifestFor(*out)
		}
		m := obs.Manifest{
			Tool:            "experiments",
			Experiments:     experiments.IDs(),
			Seed:            *seed,
			Trials:          *trials,
			Workers:         *workers,
			GoVersion:       runtime.Version(),
			GitRevision:     obs.GitRevision(),
			Start:           start.UTC(),
			DurationSeconds: time.Since(start).Seconds(),
			Timings:         timings,
			Metrics:         &snap,
		}
		if err := obs.WriteManifest(path, m); err != nil {
			log.Fatalf("experiments: %v", err)
		}
		log.Printf("wrote %s", path)
	}
}

// manifestFor derives the manifest path from the output path: next to the
// output with a .manifest.json suffix replacing any extension, or a
// default name when the record went to stdout.
func manifestFor(out string) string {
	if out == "" {
		return "experiments.manifest.json"
	}
	if i := strings.LastIndexByte(out, '.'); i > strings.LastIndexByte(out, '/') {
		out = out[:i]
	}
	return out + ".manifest.json"
}
