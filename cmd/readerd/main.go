// Command readerd serves a simulated RFID reader over the AR400-style
// HTTP/XML interface while a scenario runs inside it: tagged carts (or
// walking subjects) pass the portal repeatedly, and each pass's reads land
// in the reader's buffered-mode store for clients to poll.
//
// Usage:
//
//	readerd [-addr :7080] [-scenario warehouse|badges] [-readers N] [-seed N] [-interval 2s]
//	        [-fault SPEC] [-pprof ADDR]
//
// With -readers 2 (warehouse only) the portal runs two redundant readers
// in Gen-2 dense-reader mode — the paper's reader-redundancy setup —
// serving reader i on the -addr port + i (e.g. :7080 and :7081).
//
// -fault injects deterministic faults into every reader's HTTP interface
// (internal/faultinject): "delay:every=3,latency=2s", "drop:every=4",
// "5xx:every=2", "corrupt:every=2", "flap:up=8,down=4",
// "random:seed=1,drop=0.2". Use it to watch trackd's retry, breaker, and
// failover behavior live.
//
// Every reader port also serves GET /metrics: an OpenMetrics exposition
// of the simulation-side counters (passes, rounds, reads) plus a
// buffered-events gauge per reader — the producer's half of the live
// chain, scrapeable alongside trackd's consumer half (DESIGN.md §12).
// The metrics route bypasses -fault injection: observability stays up
// while the data plane misbehaves. -pprof serves net/http/pprof and
// expvar for live profiling.
//
// Endpoints: GET /api/status, GET /api/taglist, POST /api/taglist/purge,
// GET /metrics.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rfidtrack"
	"rfidtrack/internal/faultinject"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/tracksvc"
)

func main() {
	addr := flag.String("addr", ":7080", "listen address of the first reader; reader i adds i to the port")
	scenarioName := flag.String("scenario", "warehouse", "simulated scene: warehouse|badges")
	readers := flag.Int("readers", 1, "redundant readers on the portal (warehouse only; >1 enables dense-reader mode)")
	seed := flag.Uint64("seed", 1, "random seed")
	interval := flag.Duration("interval", 2*time.Second, "real time between simulated passes")
	fault := flag.String("fault", "", "fault-injection spec applied to every reader (see internal/faultinject)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6061)")
	flag.Parse()

	portal, err := buildPortal(*scenarioName, *readers, *seed)
	if err != nil {
		log.Fatalf("readerd: %v", err)
	}

	// The producer-side live metrics: pass/round/read counters written by
	// the pass driver, buffered-events gauges sampled at scrape time.
	live := obs.NewLive()
	reg := obs.NewRegistry(live)

	// The engine-side collector observes the portal's link resolution
	// (including the batched grid path). A Collector is single-writer and
	// not safe to snapshot mid-pass, so the per-pass callback below copies
	// counter deltas into the atomic Live set and republishes the cache
	// section for the gauges — scrapes never touch the Collector itself.
	sim := obs.NewMetrics()
	portal.Observe(sim.Shard(), nil)
	var cacheStats atomic.Pointer[obs.CacheSnapshot]
	cacheGauge := func(name, help string, field func(*obs.CacheSnapshot) uint64) {
		reg.Gauge(name, help, func() []obs.Sample {
			cs := cacheStats.Load()
			if cs == nil {
				return nil
			}
			return []obs.Sample{{Value: float64(field(cs))}}
		})
	}
	cacheGauge("link_cache_hits",
		"Budget-terms cache hits on the simulation's link resolutions.",
		func(c *obs.CacheSnapshot) uint64 { return c.LinkHits })
	cacheGauge("link_cache_misses",
		"Budget-terms cache misses on the simulation's link resolutions.",
		func(c *obs.CacheSnapshot) uint64 { return c.LinkMisses })
	cacheGauge("grid_term_hits",
		"Batched grid column reuses at an already-resolved instant.",
		func(c *obs.CacheSnapshot) uint64 { return c.GridTermHits })
	cacheGauge("grid_term_fills",
		"Batched grid column fills at a new instant.",
		func(c *obs.CacheSnapshot) uint64 { return c.GridTermFills })

	reg.Gauge("reader_buffered_events",
		"Events waiting in each simulated reader's buffered-mode store.",
		func() []obs.Sample {
			out := make([]obs.Sample, len(portal.Readers))
			for i, r := range portal.Readers {
				out[i] = obs.Sample{
					Labels: []obs.Label{{Key: "reader", Value: r.Name()}},
					Value:  float64(len(r.Buffer())),
				}
			}
			return out
		})
	metricsHandler := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		if err := reg.WriteOpenMetrics(w); err != nil {
			log.Printf("readerd: metrics: %v", err)
		}
	})

	if *pprofAddr != "" {
		expvar.Publish("rfidtrack_live", expvar.Func(func() any { return live.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("readerd: pprof server: %v", err)
			}
		}()
		log.Printf("readerd: pprof and expvar on http://%s/debug/pprof", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Drive passes in the background; each pass is instantaneous in
	// simulation time and paced by -interval in real time. The callback
	// runs on the driver goroutine between passes — the only point where
	// the Collector is quiescent — so that is where engine counters are
	// mirrored into the atomic Live set.
	mirrored := []obs.Counter{
		obs.CtrLinkResolutions, obs.CtrGridBatches, obs.CtrGridLinks,
		obs.CtrGridActiveLinks, obs.CtrGridCulled,
	}
	prev := make(map[obs.Counter]uint64, len(mirrored))
	go tracksvc.DrivePasses(ctx, portal, *interval, func(pass int, res rfidtrack.PassResult) {
		live.Inc(obs.CtrPasses)
		live.Add(obs.CtrRounds, uint64(res.Rounds))
		live.Add(obs.CtrReads, uint64(len(res.Events)))
		live.Observe(obs.HistRoundsPerPass, uint64(res.Rounds))
		snap := sim.Snapshot()
		for _, ctr := range mirrored {
			v := snap.Counters[ctr.Name()]
			live.Add(ctr, v-prev[ctr])
			prev[ctr] = v
		}
		if snap.Cache != nil {
			cacheStats.Store(snap.Cache)
		}
		log.Printf("pass %d: %d reads, %d rounds", pass, len(res.Events), res.Rounds)
	})

	var wg sync.WaitGroup
	for i, r := range portal.Readers {
		readerAddr, err := offsetAddr(*addr, i)
		if err != nil {
			log.Fatalf("readerd: %v", err)
		}
		handler := rfidtrack.NewReaderServer(r).Handler()
		if *fault != "" {
			// One injector per reader: redundant readers fail
			// independently, each replaying the same deterministic spec.
			inj, err := faultinject.Parse(*fault)
			if err != nil {
				log.Fatalf("readerd: %v", err)
			}
			handler = inj.Middleware(handler)
			log.Printf("readerd: reader %q serving with injected fault %q", r.Name(), *fault)
		}
		// /metrics routes around the injector: the scrape endpoint must
		// stay reliable precisely when the data plane is being faulted.
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metricsHandler)
		mux.Handle("/", handler)
		srv := &http.Server{Addr: readerAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			<-ctx.Done()
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
		}()
		log.Printf("readerd: serving reader %q on %s (scenario %s)", r.Name(), readerAddr, *scenarioName)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("readerd: %s: %v", readerAddr, err)
				stop()
			}
		}()
	}
	wg.Wait()
}

// offsetAddr returns addr with i added to its port ("  :7080"+1 → ":7081").
func offsetAddr(addr string, i int) (string, error) {
	if i == 0 {
		return addr, nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("cannot derive reader %d address from %q: %w", i, addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("cannot derive reader %d address from %q: %w", i, addr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+i)), nil
}

func buildPortal(name string, readers int, seed uint64) (*rfidtrack.Portal, error) {
	switch name {
	case "warehouse":
		return rfidtrack.NewObjectTrackingScenario(rfidtrack.ObjectConfig{
			TagLocations: []rfidtrack.BoxLocation{"front", "side-closer"},
			Antennas:     2,
			Readers:      readers,
			DenseMode:    readers > 1, // redundant readers jam each other otherwise
			Seed:         seed,
		})
	case "badges":
		if readers > 1 {
			return nil, fmt.Errorf("scenario badges supports a single reader")
		}
		return rfidtrack.NewHumanTrackingScenario(rfidtrack.HumanConfig{
			Subjects:     2,
			TagLocations: []rfidtrack.HumanLocation{"front", "back"},
			Antennas:     2,
			Seed:         seed,
		})
	default:
		return nil, fmt.Errorf("unknown scenario %q (want warehouse|badges)", name)
	}
}
