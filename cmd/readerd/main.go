// Command readerd serves a simulated RFID reader over the AR400-style
// HTTP/XML interface while a scenario runs inside it: tagged carts (or
// walking subjects) pass the portal repeatedly, and each pass's reads land
// in the reader's buffered-mode store for clients to poll.
//
// Usage:
//
//	readerd [-addr :7080] [-scenario warehouse|badges] [-seed N] [-interval 2s]
//
// Endpoints: GET /api/status, GET /api/taglist, POST /api/taglist/purge.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfidtrack"
	"rfidtrack/internal/tracksvc"
)

func main() {
	addr := flag.String("addr", ":7080", "listen address")
	scenarioName := flag.String("scenario", "warehouse", "simulated scene: warehouse|badges")
	seed := flag.Uint64("seed", 1, "random seed")
	interval := flag.Duration("interval", 2*time.Second, "real time between simulated passes")
	flag.Parse()

	portal, err := buildPortal(*scenarioName, *seed)
	if err != nil {
		log.Fatalf("readerd: %v", err)
	}
	r := portal.Readers[0]

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Drive passes in the background; each pass is instantaneous in
	// simulation time and paced by -interval in real time.
	go tracksvc.DrivePasses(ctx, portal, *interval, func(pass int, res rfidtrack.PassResult) {
		log.Printf("pass %d: %d reads, %d rounds", pass, len(res.Events), res.Rounds)
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rfidtrack.NewReaderServer(r).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("readerd: serving reader %q on %s (scenario %s)", r.Name(), *addr, *scenarioName)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("readerd: %v", err)
	}
}

func buildPortal(name string, seed uint64) (*rfidtrack.Portal, error) {
	switch name {
	case "warehouse":
		return rfidtrack.NewObjectTrackingScenario(rfidtrack.ObjectConfig{
			TagLocations: []rfidtrack.BoxLocation{"front", "side-closer"},
			Antennas:     2,
			Seed:         seed,
		})
	case "badges":
		return rfidtrack.NewHumanTrackingScenario(rfidtrack.HumanConfig{
			Subjects:     2,
			TagLocations: []rfidtrack.HumanLocation{"front", "back"},
			Antennas:     2,
			Seed:         seed,
		})
	default:
		return nil, fmt.Errorf("unknown scenario %q (want warehouse|badges)", name)
	}
}
