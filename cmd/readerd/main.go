// Command readerd serves a simulated RFID reader over the AR400-style
// HTTP/XML interface while a scenario runs inside it: tagged carts (or
// walking subjects) pass the portal repeatedly, and each pass's reads land
// in the reader's buffered-mode store for clients to poll.
//
// Usage:
//
//	readerd [-addr :7080] [-scenario warehouse|badges] [-readers N] [-seed N] [-interval 2s] [-fault SPEC]
//
// With -readers 2 (warehouse only) the portal runs two redundant readers
// in Gen-2 dense-reader mode — the paper's reader-redundancy setup —
// serving reader i on the -addr port + i (e.g. :7080 and :7081).
//
// -fault injects deterministic faults into every reader's HTTP interface
// (internal/faultinject): "delay:every=3,latency=2s", "drop:every=4",
// "5xx:every=2", "corrupt:every=2", "flap:up=8,down=4",
// "random:seed=1,drop=0.2". Use it to watch trackd's retry, breaker, and
// failover behavior live.
//
// Endpoints: GET /api/status, GET /api/taglist, POST /api/taglist/purge.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"rfidtrack"
	"rfidtrack/internal/faultinject"
	"rfidtrack/internal/tracksvc"
)

func main() {
	addr := flag.String("addr", ":7080", "listen address of the first reader; reader i adds i to the port")
	scenarioName := flag.String("scenario", "warehouse", "simulated scene: warehouse|badges")
	readers := flag.Int("readers", 1, "redundant readers on the portal (warehouse only; >1 enables dense-reader mode)")
	seed := flag.Uint64("seed", 1, "random seed")
	interval := flag.Duration("interval", 2*time.Second, "real time between simulated passes")
	fault := flag.String("fault", "", "fault-injection spec applied to every reader (see internal/faultinject)")
	flag.Parse()

	portal, err := buildPortal(*scenarioName, *readers, *seed)
	if err != nil {
		log.Fatalf("readerd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Drive passes in the background; each pass is instantaneous in
	// simulation time and paced by -interval in real time.
	go tracksvc.DrivePasses(ctx, portal, *interval, func(pass int, res rfidtrack.PassResult) {
		log.Printf("pass %d: %d reads, %d rounds", pass, len(res.Events), res.Rounds)
	})

	var wg sync.WaitGroup
	for i, r := range portal.Readers {
		readerAddr, err := offsetAddr(*addr, i)
		if err != nil {
			log.Fatalf("readerd: %v", err)
		}
		handler := rfidtrack.NewReaderServer(r).Handler()
		if *fault != "" {
			// One injector per reader: redundant readers fail
			// independently, each replaying the same deterministic spec.
			inj, err := faultinject.Parse(*fault)
			if err != nil {
				log.Fatalf("readerd: %v", err)
			}
			handler = inj.Middleware(handler)
			log.Printf("readerd: reader %q serving with injected fault %q", r.Name(), *fault)
		}
		srv := &http.Server{Addr: readerAddr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			<-ctx.Done()
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
		}()
		log.Printf("readerd: serving reader %q on %s (scenario %s)", r.Name(), readerAddr, *scenarioName)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("readerd: %s: %v", readerAddr, err)
				stop()
			}
		}()
	}
	wg.Wait()
}

// offsetAddr returns addr with i added to its port ("  :7080"+1 → ":7081").
func offsetAddr(addr string, i int) (string, error) {
	if i == 0 {
		return addr, nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("cannot derive reader %d address from %q: %w", i, addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("cannot derive reader %d address from %q: %w", i, addr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+i)), nil
}

func buildPortal(name string, readers int, seed uint64) (*rfidtrack.Portal, error) {
	switch name {
	case "warehouse":
		return rfidtrack.NewObjectTrackingScenario(rfidtrack.ObjectConfig{
			TagLocations: []rfidtrack.BoxLocation{"front", "side-closer"},
			Antennas:     2,
			Readers:      readers,
			DenseMode:    readers > 1, // redundant readers jam each other otherwise
			Seed:         seed,
		})
	case "badges":
		if readers > 1 {
			return nil, fmt.Errorf("scenario badges supports a single reader")
		}
		return rfidtrack.NewHumanTrackingScenario(rfidtrack.HumanConfig{
			Subjects:     2,
			TagLocations: []rfidtrack.HumanLocation{"front", "back"},
			Antennas:     2,
			Seed:         seed,
		})
	default:
		return nil, fmt.Errorf("unknown scenario %q (want warehouse|badges)", name)
	}
}
