// Command trackd is the back-end daemon: it polls one or more readerd
// instances over the HTTP/XML reader interface, runs the cleaning pipeline
// (smoothing + deduplication), and serves the tracking state as JSON.
//
// Usage:
//
//	trackd [-addr :7090] [-readers http://host:7080,http://host2:7080] [-poll 1s] [-window 2.0]
//
// Endpoints:
//
//	GET /api/tags               every tracked tag with its last location
//	GET /api/history?epc=HEX    a tag's sighting history
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/readerapi"
	"rfidtrack/internal/tracksvc"
)

func main() {
	addr := flag.String("addr", ":7090", "listen address")
	readers := flag.String("readers", "http://127.0.0.1:7080", "comma-separated readerd base URLs")
	poll := flag.Duration("poll", time.Second, "reader poll interval")
	window := flag.Float64("window", 2.0, "smoothing window in (simulation) seconds; 0 = adaptive")
	flag.Parse()

	var smoother backend.Smoother
	if *window > 0 {
		smoother = backend.NewWindowSmoother(*window)
	} else {
		smoother = backend.NewAdaptiveSmoother()
	}
	svc := tracksvc.New(backend.NewPipeline(smoother))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var bases []string
	for _, base := range strings.Split(*readers, ",") {
		if base = strings.TrimSpace(base); base != "" {
			bases = append(bases, base)
			go svc.PollLoop(ctx, readerapi.NewClient(base, nil), *poll)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("trackd: serving on %s, polling %v", *addr, bases)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("trackd: %v", err)
	}
}
