// Command trackd is the back-end daemon: it polls one or more readerd
// instances over the HTTP/XML reader interface, runs the cleaning pipeline
// (smoothing + deduplication), and serves the tracking state as JSON.
//
// Each reader is polled by its own supervisor (DESIGN.md §10): requests
// carry deadlines, transient failures retry with exponential backoff and
// jitter, and a circuit breaker sheds a persistently dead reader while the
// remaining readers keep the portal tracking — the paper's
// reader-redundancy result applied to the service chain.
//
// Ingestion is sharded and asynchronous (DESIGN.md §11): poll results
// parse into event batches, cross a bounded queue, and route by EPC hash
// to per-shard smoothers. -shards and -store-shards size the pipeline for
// the deployment's tag population; -ingest-queue and -ingest-drop pick the
// backpressure policy when readers outrun the cleaners. -confirm applies
// the k-of-n confirmation merge (DESIGN.md §15) at ingest: a tag must be
// identified in k distinct reader passes before any of its events reach
// the pipeline, trading first-sighting latency for immunity to phantom
// reads.
//
// The live chain is observable end to end (DESIGN.md §12): GET /metrics
// serves every poll/ingest/breaker counter, stage-latency histogram, and
// queue/shard/SLO gauge in OpenMetrics text for any Prometheus-style
// scraper; -trace streams per-cycle lifecycle events (poll → parse →
// apply → close → visible, one cycle ID end to end) as JSONL; -slo-target
// enables the streaming reliability monitor, whose live R_C estimate and
// verdict ride GET /api/health and the exported gauges; -pprof serves
// net/http/pprof and expvar for live profiling.
//
// Usage:
//
//	trackd [-addr :7090] [-readers http://host:7080,http://host2:7080] [-poll 1s]
//	       [-window 2.0] [-request-timeout 5s] [-retries 3] [-backoff 50ms]
//	       [-breaker-failures 3] [-breaker-open 2s] [-jitter-seed 1]
//	       [-shards 1] [-store-shards 32] [-ingest-queue 256]
//	       [-ingest-workers 1] [-ingest-drop] [-pprof ADDR] [-trace FILE]
//	       [-slo-target 0.99] [-slo-window 30s] [-confirm union|K-of-N]
//
// Endpoints:
//
//	GET /api/tags               every tracked tag with its last location
//	GET /api/history?epc=HEX    a tag's sighting history (404 unknown EPC)
//	GET /api/health             per-reader breaker state, poll counters, SLO verdict
//	GET /api/stats              live ingest counters and shard occupancy
//	GET /metrics                OpenMetrics exposition of the live chain
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/readerapi"
	"rfidtrack/internal/session"
	"rfidtrack/internal/tracksvc"
)

func main() {
	addr := flag.String("addr", ":7090", "listen address")
	readers := flag.String("readers", "http://127.0.0.1:7080", "comma-separated readerd base URLs")
	poll := flag.Duration("poll", time.Second, "reader poll interval")
	window := flag.Float64("window", 2.0, "smoothing window in (simulation) seconds; 0 = adaptive")
	requestTimeout := flag.Duration("request-timeout", readerapi.DefaultTimeout, "per-request deadline")
	retries := flag.Int("retries", 3, "poll attempts per cycle, including the first")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubles per retry, jittered)")
	backoffMax := flag.Duration("backoff-max", 2*time.Second, "retry backoff cap")
	breakerFailures := flag.Int("breaker-failures", 3, "consecutive failed cycles before the breaker opens")
	breakerOpen := flag.Duration("breaker-open", 2*time.Second, "open-breaker cool-off before a half-open probe")
	jitterSeed := flag.Uint64("jitter-seed", 1, "seed of the deterministic backoff jitter stream")
	shards := flag.Int("shards", 1, "pipeline smoother shards (rounded up to a power of two)")
	storeShards := flag.Int("store-shards", backend.DefaultStoreShards, "tracking-store shards (rounded up to a power of two)")
	ingestQueue := flag.Int("ingest-queue", 256, "async ingest queue depth, in batches")
	ingestWorkers := flag.Int("ingest-workers", 1, "async ingest workers (1 preserves cross-batch order)")
	ingestDrop := flag.Bool("ingest-drop", false, "shed batches when the ingest queue is full instead of blocking polls")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	tracePath := flag.String("trace", "", "write a JSONL event-lifecycle trace to this file")
	sloTarget := flag.Float64("slo-target", 0, "detection-reliability SLO target in (0,1]; 0 disables the reliability monitor")
	sloWindow := flag.Duration("slo-window", 30*time.Second, "reliability monitor sliding window")
	confirm := flag.String("confirm", "union", `confirmation merge policy: "union" or "K-of-N" (e.g. 2-of-3; N=0 counts all passes)`)
	flag.Parse()

	newSmoother := func() backend.Smoother {
		if *window > 0 {
			return backend.NewWindowSmoother(*window)
		}
		return backend.NewAdaptiveSmoother()
	}
	opts := []tracksvc.Option{}
	var tracer *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("trackd: %v", err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f)
		defer func() {
			if err := tracer.Close(); err != nil {
				log.Printf("trackd: trace: %v", err)
			}
		}()
		opts = append(opts, tracksvc.WithTracer(tracer))
	}
	if *sloTarget > 0 {
		opts = append(opts, tracksvc.WithSLO(tracksvc.SLOConfig{
			Window: *sloWindow,
			Target: *sloTarget,
		}))
	}
	confirmK, confirmN, err := session.ParseConfirm(*confirm)
	if err != nil {
		log.Fatalf("trackd: %v", err)
	}
	opts = append(opts, tracksvc.WithConfirm(confirmK, confirmN))
	svc := tracksvc.New(backend.NewShardedPipeline(backend.Config{
		Shards:      *shards,
		NewSmoother: newSmoother,
		StoreShards: *storeShards,
	}), opts...)

	if *pprofAddr != "" {
		// The expvar mirrors the /metrics content as raw JSON for tools
		// that speak expvar rather than OpenMetrics.
		expvar.Publish("rfidtrack_live", expvar.Func(func() any {
			return svc.Metrics().Live().Snapshot()
		}))
		go func() {
			// The default mux carries /debug/pprof and /debug/vars.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("trackd: pprof server: %v", err)
			}
		}()
		log.Printf("trackd: pprof and expvar on http://%s/debug/pprof", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc.StartIngest(ctx, tracksvc.IngestConfig{
		QueueDepth:   *ingestQueue,
		Workers:      *ingestWorkers,
		DropWhenFull: *ingestDrop,
	})

	var bases []string
	for i, base := range strings.Split(*readers, ",") {
		if base = strings.TrimSpace(base); base != "" {
			bases = append(bases, base)
			cfg := tracksvc.SupervisorConfig{
				Interval:         *poll,
				RequestTimeout:   *requestTimeout,
				MaxAttempts:      *retries,
				BackoffBase:      *backoff,
				BackoffMax:       *backoffMax,
				FailureThreshold: *breakerFailures,
				OpenTimeout:      *breakerOpen,
				// Distinct per-reader jitter streams, reproducible from the
				// flag: redundant readers must not retry in lockstep.
				JitterSeed: *jitterSeed + uint64(i),
				OnStateChange: func(reader string, from, to tracksvc.BreakerState) {
					log.Printf("trackd: %s: breaker %s -> %s", reader, from, to)
				},
			}
			go svc.Supervise(ctx, base, readerapi.NewClient(base, nil), cfg)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("trackd: serving on %s, polling %v", *addr, bases)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("trackd: %v", err)
	}
}
