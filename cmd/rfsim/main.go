// Command rfsim runs the paper-reproduction experiments.
//
// Usage:
//
//	rfsim [-seed N] [-trials N] [-list] <experiment>...
//	rfsim all
//
// Each experiment prints the same rows the corresponding table or figure
// of the paper reports, with the paper's published values alongside.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rfidtrack/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("rfsim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	seed := fs.Uint64("seed", 1, "random seed (equal seeds reproduce results exactly)")
	trials := fs.Int("trials", 0, "override per-experiment trial counts (0 = paper defaults)")
	list := fs.Bool("list", false, "list available experiments and exit")
	csv := fs.Bool("csv", false, "emit result tables as CSV (for plotting)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rfsim [flags] <experiment>...|all\n\nexperiments: %s\n\nflags:\n",
			strings.Join(experiments.IDs(), " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(out, id)
		}
		return 0
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fs.Usage()
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	opt := experiments.Options{Seed: *seed, Trials: *trials}
	for _, id := range ids {
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(errOut, "rfsim: %v\n", err)
			return 1
		}
		if *csv {
			for _, tab := range res.Tables {
				fmt.Fprintf(out, "# %s: %s\n%s\n", res.ID, tab.Title, tab.CSV())
			}
		} else {
			fmt.Fprintln(out, res)
		}
	}
	return 0
}
