// Command rfsim runs the paper-reproduction experiments.
//
// Usage:
//
//	rfsim [-seed N] [-trials N] [-workers N] [-linkcache on|off] [-linkbatch on|off] [-linkcull on|off] [-list] <experiment>...
//	rfsim -metrics run.manifest.json -trace run.trace.jsonl fig2
//	rfsim all
//
// Each experiment prints the same rows the corresponding table or figure
// of the paper reports, with the paper's published values alongside.
// -metrics enables the engine's instrumentation layer and writes a run
// manifest (render it with obsreport); -trace writes a JSONL pass/round
// event stream.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"rfidtrack/internal/experiments"
	"rfidtrack/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("rfsim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	seed := fs.Uint64("seed", 1, "random seed (equal seeds reproduce results exactly)")
	trials := fs.Int("trials", 0, "override per-experiment trial counts (0 = paper defaults)")
	workers := fs.Int("workers", 0, "measurement worker pool size (0 = GOMAXPROCS); results are identical for any value")
	linkcache := fs.String("linkcache", "on", "deterministic budget-terms cache: on or off (off recomputes every link budget, for A/B benchmarking; results are bit-identical)")
	linkbatch := fs.String("linkbatch", "on", "batched grid link resolution: on or off (off resolves links one at a time, for A/B benchmarking; results are bit-identical)")
	linkcull := fs.String("linkcull", "on", "broad-phase link culling: on or off (off resolves every pair densely, for A/B benchmarking; results are bit-identical)")
	list := fs.Bool("list", false, "list available experiments and exit")
	csv := fs.Bool("csv", false, "emit result tables as CSV (for plotting)")
	metricsPath := fs.String("metrics", "", "collect engine metrics and write a run manifest to this file")
	tracePath := fs.String("trace", "", "write a JSONL pass/round trace to this file")
	traceLinks := fs.Bool("trace-links", false, "include per-(tag, antenna) link events in the trace (large)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rfsim [flags] <experiment>...|all\n\nexperiments: %s\n\nflags:\n",
			strings.Join(experiments.IDs(), " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(out, id)
		}
		return 0
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fs.Usage()
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}

	opt := experiments.Options{Seed: *seed, Trials: *trials, Workers: *workers}
	switch *linkcache {
	case "on":
	case "off":
		opt.DisableLinkCache = true
	default:
		fmt.Fprintf(errOut, "rfsim: -linkcache wants on or off, got %q\n", *linkcache)
		return 2
	}
	switch *linkbatch {
	case "on":
	case "off":
		opt.DisableLinkBatch = true
	default:
		fmt.Fprintf(errOut, "rfsim: -linkbatch wants on or off, got %q\n", *linkbatch)
		return 2
	}
	switch *linkcull {
	case "on":
	case "off":
		opt.DisableLinkCull = true
	default:
		fmt.Fprintf(errOut, "rfsim: -linkcull wants on or off, got %q\n", *linkcull)
		return 2
	}
	if *metricsPath != "" {
		opt.Metrics = obs.NewMetrics()
	}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(errOut, "rfsim: %v\n", err)
			return 1
		}
		traceFile = f
		var topts []obs.TracerOption
		if *traceLinks {
			topts = append(topts, obs.TraceLinks())
		}
		opt.Tracer = obs.NewTracer(f, topts...)
	}
	if err := opt.Validate(); err != nil {
		fmt.Fprintf(errOut, "rfsim: %v\n", err)
		return 2
	}

	start := time.Now()
	timings := make(map[string]float64, len(ids))
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(errOut, "rfsim: %v\n", err)
			return 1
		}
		timings[id] = time.Since(t0).Seconds()
		if *csv {
			for _, tab := range res.Tables {
				fmt.Fprintf(out, "# %s: %s\n%s\n", res.ID, tab.Title, tab.CSV())
			}
		} else {
			fmt.Fprintln(out, res)
		}
	}

	if opt.Tracer != nil {
		if err := opt.Tracer.Close(); err != nil {
			fmt.Fprintf(errOut, "rfsim: trace: %v\n", err)
			return 1
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(errOut, "rfsim: trace: %v\n", err)
			return 1
		}
	}
	if opt.Metrics != nil {
		snap := opt.Metrics.Snapshot()
		m := obs.Manifest{
			Tool:            "rfsim",
			Experiments:     ids,
			Seed:            *seed,
			Trials:          *trials,
			Workers:         *workers,
			GoVersion:       runtime.Version(),
			GitRevision:     obs.GitRevision(),
			Start:           start.UTC(),
			DurationSeconds: time.Since(start).Seconds(),
			Timings:         timings,
			Metrics:         &snap,
		}
		if err := obs.WriteManifest(*metricsPath, m); err != nil {
			fmt.Fprintf(errOut, "rfsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(errOut, "rfsim: wrote %s\n", *metricsPath)
	}
	return 0
}
