package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig2", "table1", "readers", "extensions"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-trials", "2", "-seed", "3", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Table 1", "front", "paper"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-trials", "2", "fig2", "table2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "== fig2") || !strings.Contains(out.String(), "== table2") {
		t.Error("multiple experiments not all run")
	}
}

func TestRunUsageOnNoArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("usage not printed: %s", errOut.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"bogus"}, &out, &errOut); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %s", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestRunCSV(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-trials", "2", "-csv", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	s := out.String()
	if !strings.Contains(s, "tag location,measured,paper") {
		t.Errorf("CSV header missing:\n%s", s)
	}
	if strings.Contains(s, "---") {
		t.Error("CSV output contains table separators")
	}
}
